(* Evaluate a scoring expression under one embedding. [score_of] is
   used to resolve [Best_of]: within a single embedding a variable
   binds to exactly one node, so "best" is that node's own score. *)
let rec eval_expr (pat : Pattern.t) (b : Matcher.binding)
    (expr : Pattern.score_expr) : float =
  match expr with
  | Pattern.Node_score _ -> invalid_arg "eval_expr: Node_score out of context"
  | Pattern.Best_of v -> begin
    match var_score pat b v with
    | Some s -> s
    | None -> 0.
  end
  | Pattern.Similarity { left; right; sim; _ } -> begin
    match Matcher.lookup b left, Matcher.lookup b right with
    | Some l, Some r -> sim (Stree.all_text l) (Stree.all_text r)
    | (Some _ | None), _ -> 0.
  end
  | Pattern.Combine { inputs; eval; _ } ->
    eval (List.map (eval_expr pat b) inputs)
  | Pattern.Const c -> c

and var_score (pat : Pattern.t) (b : Matcher.binding) var : float option =
  match Pattern.rule_for pat var with
  | None -> None
  | Some { expr = Pattern.Node_score scorer; _ } ->
    Option.map scorer.eval (Matcher.lookup b var)
  | Some { expr; _ } -> Some (eval_expr pat b expr)

let score_of_binding = var_score

(* Build the witness tree for one embedding. *)
let rec witness (pat : Pattern.t) (b : Matcher.binding) (p : Pattern.pnode) :
    Stree.t option =
  match Matcher.lookup b p.var with
  | None -> None
  | Some node ->
    let score = var_score pat b p.var in
    let score = match score with Some _ -> score | None -> node.score in
    if p.children = [] then Some { node with score }
    else begin
      let children =
        List.filter_map (fun c -> witness pat b c) p.children
        |> List.map (fun n -> Stree.Node n)
      in
      Some { node with score; children }
    end

let select ?(trace = Trace.disabled) (pat : Pattern.t) (trees : Stree.t list) =
  Trace.span_over trace "Select" trees (fun trees ->
      List.concat_map
        (fun tree ->
          List.filter_map
            (fun b -> witness pat b pat.root)
            (Matcher.embeddings pat tree))
        trees)
