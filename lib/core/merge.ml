(* Backend-agnostic deterministic merge for partitioned execution.

   One query fanned out over disjoint ascending doc ranges — whether
   the ranges are local partitions on domains (lib/exec) or remote
   shards behind a coordinator (lib/dist) — merges back with exactly
   two rules:

   - structural families (TermJoin, GenMeet, PhraseFinder) return
     document-ordered results per range, so concatenation in range
     order IS the global document order;
   - ranked top-k returns each range's local top-k under the total
     order (score desc, doc asc); the union re-sorted under the same
     order and truncated to k is exactly the unpartitioned answer,
     ties included, because ranges are disjoint (no duplicate docs).

   The monotone θ threshold that makes cross-range pruning sound lives
   here too ({!Theta}), so local domains and remote shards share one
   implementation of the invariant: θ only ever rises, it is always ≤
   the final global cutoff, and pruning compares STRICTLY ([bound <
   θ]) because a score exactly equal to the final cutoff can still win
   the global doc-id tie-break. *)

let compare_doc_score (d1, s1) (d2, s2) =
  match compare (s2 : float) s1 with 0 -> compare (d1 : int) d2 | c -> c

let concat_in_order vals =
  let xs = List.concat (Array.to_list vals) in
  (xs, List.length xs)

let top_k ~compare:cmp ~k xs =
  List.filteri (fun i _ -> i < k) (List.sort cmp xs)

let merge_ranked ~k vals =
  let top =
    top_k ~compare:compare_doc_score ~k (List.concat (Array.to_list vals))
  in
  (top, List.length top)

module Theta = struct
  type t = float Atomic.t

  let make ?(seed = neg_infinity) () = Atomic.make seed
  let get = Atomic.get

  let publish t c =
    (* monotone max via CAS: physical equality on the box returned by
       Atomic.get makes the retry loop sound *)
    let rec bump () =
      let cur = Atomic.get t in
      if c > cur && not (Atomic.compare_and_set t cur c) then bump ()
    in
    bump ()

  let prunes t bound = bound < Atomic.get t
end
