(** Per-query resource governor.

    A query executes under a {!t} created from its {!limits}: every
    unit of work — an evaluated expression, a decoded tuple, an
    emitted node — calls {!tick}, and materialized intermediate
    results are gated by {!check_results}. The first limit breached
    raises {!Resource_exhausted}, which unwinds the query cleanly;
    the database itself holds no governor state, so the next query
    starts fresh.

    The wall clock is sampled every 128 steps, keeping the common
    case a counter increment. *)

type limits = {
  max_steps : int option;  (** budget of work units *)
  timeout_s : float option;  (** wall-clock budget in seconds *)
  max_results : int option;  (** cap on materialized tuples/results *)
}

val unlimited : limits
(** No bounds — every field [None]. *)

val limits :
  ?max_steps:int -> ?timeout_s:float -> ?max_results:int -> unit -> limits

type reason = Steps | Timeout | Results

type violation = {
  reason : reason;
  steps : int;  (** steps executed when the limit was hit *)
  elapsed_s : float;
  limit : string;  (** the breached limit, printed *)
}

exception Resource_exhausted of violation

val pp_violation : Format.formatter -> violation -> unit
val violation_to_string : violation -> string

type t

val start : limits -> t
(** Begin a governed execution; the deadline clock starts now. *)

val tick : t -> unit
(** Account one unit of work. Raises {!Resource_exhausted}. *)

val tick_n : t -> int -> unit
(** Account [n] units at once (bulk operators). *)

val check_results : t -> int -> unit
(** Fail if a materialized result set of [n] rows exceeds the cap. *)

val check_deadline : t -> unit
(** Sample the clock now, regardless of the 128-step cadence. *)

val steps : t -> int
(** Work accounted so far. *)

(** {1 Shared budgets}

    A parallel query runs one chunk per domain, each under its own
    {!t}, but the user's [--max-steps]/[--timeout] bound the {e whole}
    query. A {!shared} budget holds the limits, one atomic step
    counter and one absolute deadline; each domain {!attach}es a
    private governor whose ticks stay domain-local and are flushed
    into the shared counter at the same 128-step cadence as the clock
    sample. The first breach trips the budget exactly once — every
    domain that breaches or observes the trip raises the {e same}
    {!violation}, so the coordinator reports one typed error. *)

type shared

val make_shared : limits -> shared
(** Begin a shared governed execution; the deadline clock starts now. *)

val attach : shared -> t
(** A private governor drawing on the shared budget. Its deadline is
    the shared absolute deadline, not a fresh one. *)

val settle : t -> unit
(** Flush an attached governor's unflushed steps into the shared
    counter, checking the budget; call when a chunk completes. No-op
    for unattached governors. *)

val shared_steps : shared -> int
(** Total steps flushed by all attached governors so far. *)

val shared_violation : shared -> violation option
(** The violation that tripped the budget, if any. *)

val shared_check_results : shared -> int -> unit
(** {!check_results} against the shared limits (re-raising the tripping
    violation if the budget is already blown). *)

val shared_check_deadline : shared -> unit
(** Sample the clock against the shared deadline now. *)
