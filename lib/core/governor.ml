type limits = {
  max_steps : int option;
  timeout_s : float option;
  max_results : int option;
}

let unlimited = { max_steps = None; timeout_s = None; max_results = None }

let limits ?max_steps ?timeout_s ?max_results () =
  { max_steps; timeout_s; max_results }

type reason = Steps | Timeout | Results

type violation = {
  reason : reason;
  steps : int;
  elapsed_s : float;
  limit : string;
}

exception Resource_exhausted of violation

let pp_violation ppf v =
  Format.fprintf ppf "resource exhausted after %d steps (%.3f s): %s" v.steps
    v.elapsed_s v.limit

let violation_to_string v = Format.asprintf "%a" pp_violation v

(* A shared budget: several governors (one per domain of a parallel
   query) draw steps from one atomic counter against one limit set,
   and race to record exactly one violation — every participant that
   breaches (or observes the breach) raises the same [violation]
   value, so the query reports one typed error, not one per domain. *)
type shared = {
  sh_l : limits;
  sh_started : float;
  sh_deadline : float;
  sh_steps : int Atomic.t;
  sh_tripped : violation option Atomic.t;
}

type t = {
  l : limits;
  started : float;
  deadline : float;  (** absolute; [infinity] when unbounded *)
  mutable steps : int;
  shared : shared option;
  mutable flushed : int;  (** local steps already pushed to [shared] *)
}

let now () = Unix.gettimeofday ()

let start l =
  let started = now () in
  {
    l;
    started;
    deadline =
      (match l.timeout_s with Some s -> started +. s | None -> infinity);
    steps = 0;
    shared = None;
    flushed = 0;
  }

let make_shared l =
  let started = now () in
  {
    sh_l = l;
    sh_started = started;
    sh_deadline =
      (match l.timeout_s with Some s -> started +. s | None -> infinity);
    sh_steps = Atomic.make 0;
    sh_tripped = Atomic.make None;
  }

(* The attached governor inherits the shared limits and the shared
   absolute deadline: a chunk started late in the query's life gets
   only the remaining budget, not a fresh one. *)
let attach sh =
  {
    l = sh.sh_l;
    started = sh.sh_started;
    deadline = sh.sh_deadline;
    steps = 0;
    shared = Some sh;
    flushed = 0;
  }

let steps t = t.steps
let shared_steps sh = Atomic.get sh.sh_steps
let shared_violation sh = Atomic.get sh.sh_tripped

(* First violation wins; everyone raises the winning value. *)
let trip_shared sh v =
  ignore (Atomic.compare_and_set sh.sh_tripped None (Some v) : bool);
  match Atomic.get sh.sh_tripped with
  | Some v -> raise (Resource_exhausted v)
  | None -> raise (Resource_exhausted v)

let exhaust t reason limit =
  let v =
    { reason; steps = t.steps; elapsed_s = now () -. t.started; limit }
  in
  match t.shared with
  | Some sh -> trip_shared sh v
  | None -> raise (Resource_exhausted v)

let reraise_if_tripped sh =
  match Atomic.get sh.sh_tripped with
  | Some v -> raise (Resource_exhausted v)
  | None -> ()

(* Push unflushed local steps into the shared counter and check the
   shared budget. Called sparsely (the 128-step cadence of the clock
   sample) so the hot path stays one private increment. *)
let flush_shared t sh =
  reraise_if_tripped sh;
  let delta = t.steps - t.flushed in
  let total =
    if delta > 0 then begin
      t.flushed <- t.steps;
      Atomic.fetch_and_add sh.sh_steps delta + delta
    end
    else Atomic.get sh.sh_steps
  in
  match sh.sh_l.max_steps with
  | Some m when total > m ->
    let v =
      {
        reason = Steps;
        steps = total;
        elapsed_s = now () -. t.started;
        limit = Printf.sprintf "step budget of %d" m;
      }
    in
    trip_shared sh v
  | Some _ | None -> ()

let check_deadline t =
  (match t.shared with Some sh -> flush_shared t sh | None -> ());
  if t.deadline < infinity && now () > t.deadline then
    exhaust t Timeout
      (Printf.sprintf "deadline of %g s" (t.deadline -. t.started))

let check_steps t =
  match t.shared with
  | Some _ ->
    (* shared budgets are only enforced at the flush cadence — the
       counter is shared, so a per-tick atomic would serialize the
       domains the budget is meant to let run free *)
    ()
  | None -> begin
    match t.l.max_steps with
    | Some m when t.steps > m ->
      exhaust t Steps (Printf.sprintf "step budget of %d" m)
    | Some _ | None -> ()
  end

let tick t =
  t.steps <- t.steps + 1;
  check_steps t;
  (* sample the clock sparsely: ticks are the hot path *)
  if t.steps land 127 = 0 then check_deadline t

let tick_n t n =
  if n > 0 then begin
    let before = t.steps lsr 7 in
    t.steps <- t.steps + n;
    check_steps t;
    if t.steps lsr 7 <> before then check_deadline t
    else match t.shared with
      | Some sh when t.steps - t.flushed >= 128 -> flush_shared t sh
      | Some _ | None -> ()
  end

(* Settle an attached governor's unflushed steps into the shared
   counter (checking the budget one last time); call when a chunk of
   parallel work completes. *)
let settle t =
  match t.shared with Some sh -> flush_shared t sh | None -> ()

let check_results t n =
  match t.l.max_results with
  | Some m when n > m ->
    exhaust t Results
      (Printf.sprintf "result cap of %d (got %d)" m n)
  | Some _ | None -> ()

let shared_check_results sh n =
  reraise_if_tripped sh;
  check_results (attach sh) n

let shared_check_deadline sh =
  reraise_if_tripped sh;
  let t = attach sh in
  if t.deadline < infinity && now () > t.deadline then
    exhaust t Timeout
      (Printf.sprintf "deadline of %g s" (t.deadline -. t.started))
