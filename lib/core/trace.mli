(** Per-query execution tracing for EXPLAIN ANALYZE.

    A tracer is either the shared {!disabled} sentinel — in which case
    every hook is a single boolean test, no allocation, no clock
    sample — or a live tracer created with {!make} that records a tree
    of spans: one per operator invocation, carrying input/output
    cardinalities, governor steps consumed and elapsed wall time.

    Tracers are single-threaded by design: each query runs on one
    domain with its own tracer. *)

type span = {
  mutable name : string;  (** operator name, e.g. ["TermJoin"] *)
  mutable input : int;  (** input cardinality; [-1] = unknown *)
  mutable output : int;  (** output cardinality; [-1] = unknown *)
  mutable est : int;  (** planner-estimated output cardinality; [-1] = none *)
  mutable gov_steps : int;  (** governor steps consumed; [-1] = untracked *)
  mutable elapsed_ns : int;  (** wall time inside the span *)
  mutable attrs : (string * string) list;  (** free-form annotations *)
  mutable children : span list;  (** nested operator spans, in order *)
}

type t

val disabled : t
(** The shared no-op tracer. [enabled disabled = false]. *)

val make : unit -> t
val enabled : t -> bool

val enter : ?input:int -> ?governor:Governor.t -> t -> string -> unit
(** Open a span. When [governor] is given, the step counter is sampled
    so {!leave} can record the delta. *)

val leave : ?output:int -> ?governor:Governor.t -> t -> unit
(** Close the innermost open span, recording elapsed time and — when a
    [governor] was sampled at {!enter} — the steps consumed. *)

val annotate : t -> string -> string -> unit
(** Attach a [key=value] attribute to the innermost open span. *)

val set_input : t -> int -> unit
(** Set the input cardinality of the innermost open span after the
    fact (for operators that only learn it mid-flight). *)

val unwind : t -> unit
(** Close every open frame; used when an exception escapes traced code
    so the partial tree stays well-formed. *)

val span : ?input:int -> ?governor:Governor.t -> t -> string -> (unit -> 'a) -> 'a
(** [span t name f] runs [f] inside a fresh span; exception-safe. *)

val span_list :
  ?input:int -> ?governor:Governor.t -> t -> string -> (unit -> 'a list) -> 'a list
(** Like {!span} but records [List.length result] as the output
    cardinality. *)

val span_count :
  ?input:int -> ?governor:Governor.t -> t -> string -> (unit -> int) -> int
(** Like {!span} for emitter-style operators whose return value is the
    emitted count: records it as the output cardinality. *)

val span_over :
  ?governor:Governor.t -> t -> string -> 'a list -> ('a list -> 'b list) -> 'b list
(** [span_over t name input f] — the common list-in/list-out operator
    shape. Input and output cardinalities are recorded; neither
    [List.length] runs when the tracer is disabled. *)

val attach : t -> span -> unit
(** Graft a finished span — typically the root of a tree built by
    another tracer on another domain — as a child of the innermost
    open span (or as a top-level span when none is open). The grafted
    tree must be complete; it is not copied. *)

val roots : t -> span list
(** Completed top-level spans, in completion order. *)

val root : t -> span option
(** The single completed top-level span; several are wrapped under a
    synthetic ["trace"] span. *)

val iter_span : (span -> unit) -> span -> unit
(** Depth-first, parent-before-children iteration. *)

val apply_estimates : span -> (string * int) list -> unit
(** [apply_estimates sp pairs] stamps planner estimates onto a
    finished span tree: each [(operator_name, est)] pair sets the
    {!field-span.est} of the first span with that name that does not
    already carry one. EXPLAIN then shows estimated vs actual
    cardinality side by side. *)

val pp_span : Format.formatter -> span -> unit
val span_to_string : span -> string
