(** Scored selection (Sec. 3.2.1).

    For every input tree and every embedding of the scored pattern
    tree, output one witness tree shaped like the pattern: each
    pattern variable contributes the data node it binds to (leaf
    variables keep their whole subtree), and IR-nodes carry scores
    computed by the pattern's scoring rules. *)

val select : ?trace:Trace.t -> Pattern.t -> Stree.t list -> Stree.t list
(** With [trace], records a ["Select"] span carrying input/output
    cardinalities. *)

val score_of_binding : Pattern.t -> Matcher.binding -> int -> float option
(** Score that the pattern's rules assign to the given variable
    under one embedding; [None] when the variable has no rule.
    Exposed for the Threshold operator and for tests. *)
