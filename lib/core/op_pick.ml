type criterion = {
  worth : Stree.t -> bool;
  sibling_filter : Stree.t list -> Stree.t list;
}

let criterion ?(sibling_filter = fun l -> l) worth = { worth; sibling_filter }

let pick_foo ?(threshold = 0.8) ?(fraction = 0.5) () =
  let worth (n : Stree.t) =
    match Stree.child_nodes n with
    | [] -> Stree.score n >= threshold
    | children ->
      let total = List.length children in
      let relevant =
        List.length
          (List.filter (fun c -> Stree.score c >= threshold) children)
      in
      float_of_int relevant /. float_of_int total > fraction
  in
  criterion worth

let worth_by_histogram ~quantile ~scores ?fraction () =
  (* Build a histogram once; its quantile becomes the PickFoo
     threshold, sparing the user from guessing an absolute score. *)
  let sorted = List.sort compare scores in
  let n = List.length sorted in
  let threshold =
    if n = 0 then 0.
    else begin
      (* Nearest-rank: the smallest element whose cumulative fraction
         reaches the quantile, i.e. index ceil(q*n) - 1. The previous
         [int_of_float (q *. n)] truncated, so boundary quantiles over
         even-sized groups (q=0.5, n=4) skipped past the median. *)
      let rank = int_of_float (Float.ceil (quantile *. float_of_int n)) in
      let idx = min (n - 1) (max 0 (rank - 1)) in
      List.nth sorted idx
    end
  in
  pick_foo ~threshold ?fraction ()

let returned crit ~candidates tree =
  let acc = ref [] in
  let rec walk parent_returned (n : Stree.t) =
    let is_returned =
      candidates n && crit.worth n && not parent_returned
    in
    if is_returned then acc := n :: !acc;
    List.iter (walk is_returned) (Stree.child_nodes n)
  in
  walk false tree;
  let in_order = List.rev !acc in
  let is_in l n = List.exists (fun m -> m == n) l in
  (* Horizontal redundancy: the sibling filter runs over the returned
     nodes that share a parent; the root has no siblings. *)
  let surviving = ref (if is_in in_order tree then [ tree ] else []) in
  let rec regroup (n : Stree.t) =
    let children = Stree.child_nodes n in
    let returned_children = List.filter (is_in in_order) children in
    let chosen = crit.sibling_filter returned_children in
    List.iter
      (fun c -> if is_in chosen c then surviving := c :: !surviving)
      returned_children;
    List.iter regroup children
  in
  regroup tree;
  List.filter (is_in !surviving) in_order

let apply ?(trace = Trace.disabled) (pat : Pattern.t) ~var crit trees =
  Trace.span_over trace "Pick" trees @@ fun trees ->
  (* The input trees are operator outputs (projections, witnesses):
     their data IR-nodes carry scores, but the original pattern need
     not structurally embed anymore (projection elides nodes). A
     candidate is therefore a scored node satisfying the variable's
     predicate. *)
  let pred =
    match Pattern.find_var pat var with
    | Some p -> p.pred
    | None -> Pattern.Not Pattern.True
  in
  let apply_tree tree =
    let is_candidate (n : Stree.t) =
      n.score <> None && Pattern.holds pred n
    in
    let keep = returned crit ~candidates:is_candidate tree in
    let is_returned n = List.exists (fun m -> m == n) keep in
    let rec rebuild (n : Stree.t) : Stree.child list =
      let drop = is_candidate n && not (is_returned n) in
      let children =
        List.concat_map
          (fun c ->
            match c with
            | Stree.Content s -> if drop then [] else [ Stree.Content s ]
            | Stree.Node m -> rebuild m)
          n.children
      in
      if drop then children
      else [ Stree.Node { n with children } ]
    in
    let root =
      (* the root survives structurally; its candidacy, when dropped,
         only clears its score *)
      let drop_root = is_candidate tree && not (is_returned tree) in
      let children =
        List.concat_map
          (fun c ->
            match c with
            | Stree.Content s -> [ Stree.Content s ]
            | Stree.Node m -> rebuild m)
          tree.children
      in
      let score = if drop_root then None else tree.score in
      { tree with children; score }
    in
    Op_project.rescore_secondary pat ~pl:[] root
  in
  List.map apply_tree trees
