type id =
  | Stored of { doc : int; start : int }
  | Synthetic of int

type t = {
  tag : string;
  attrs : (string * string) list;
  score : float option;
  id : id;
  children : child list;
}

and child = Node of t | Content of string

(* Atomic so trees can be built from several domains at once (ids
   stay unique); synthetic ids only need freshness, not density. *)
let counter = Atomic.make 0

let fresh_id () = Synthetic (Atomic.fetch_and_add counter 1 + 1)

let make ?(attrs = []) ?score ?id tag children =
  let id = match id with Some id -> id | None -> fresh_id () in
  { tag; attrs; score; id; children }

let score t = Option.value ~default:0. t.score
let with_score t s = { t with score = Some s }

let child_nodes t =
  List.filter_map (function Node n -> Some n | Content _ -> None) t.children

let rec of_element ?id_of (e : Xmlkit.Tree.element) =
  let id = match id_of with Some f -> f e | None -> fresh_id () in
  let children =
    List.filter_map
      (fun n ->
        match n with
        | Xmlkit.Tree.Element c -> Some (Node (of_element ?id_of c))
        | Xmlkit.Tree.Text s -> Some (Content s)
        | Xmlkit.Tree.Comment _ | Xmlkit.Tree.Pi _ -> None)
      e.children
  in
  {
    tag = e.tag;
    attrs = List.map (fun (a : Xmlkit.Tree.attr) -> (a.name, a.value)) e.attrs;
    score = None;
    id;
    children;
  }

let of_numbered (num : Xmlkit.Numbering.t) ~doc =
  (* Walk the tree in the same preorder as the numbering pass did, so
     preorder ranks align with info indices. *)
  let next = ref 0 in
  let rec go (e : Xmlkit.Tree.element) =
    let index = !next in
    incr next;
    let info = num.infos.(index) in
    let children =
      List.filter_map
        (fun n ->
          match n with
          | Xmlkit.Tree.Element c -> Some (Node (go c))
          | Xmlkit.Tree.Text s -> Some (Content s)
          | Xmlkit.Tree.Comment _ | Xmlkit.Tree.Pi _ -> None)
        e.children
    in
    {
      tag = e.tag;
      attrs = List.map (fun (a : Xmlkit.Tree.attr) -> (a.name, a.value)) e.attrs;
      score = None;
      id = Stored { doc; start = info.start };
      children;
    }
  in
  go num.elements.(0)

let rec to_element ?score_attr t : Xmlkit.Tree.element =
  let attrs =
    match score_attr, t.score with
    | Some name, Some s -> (name, Printf.sprintf "%g" s) :: t.attrs
    | Some _, None | None, _ -> t.attrs
  in
  Xmlkit.Tree.elem ~attrs t.tag
    (List.map
       (fun c ->
         match c with
         | Node n -> Xmlkit.Tree.Element (to_element ?score_attr n)
         | Content s -> Xmlkit.Tree.Text s)
       t.children)

let all_text t =
  let buf = Buffer.create 64 in
  let rec go t =
    List.iter
      (fun c ->
        match c with
        | Content s ->
          if Buffer.length buf > 0 then Buffer.add_char buf ' ';
          Buffer.add_string buf s
        | Node n -> go n)
      t.children
  in
  go t;
  Buffer.contents buf

let self_or_descendants t =
  let rec go acc t = List.fold_left go (t :: acc) (child_nodes t) in
  List.rev (go [] t)

let find pred t = List.find_opt pred (self_or_descendants t)

let equal_id a b =
  match a, b with
  | Stored x, Stored y -> x.doc = y.doc && x.start = y.start
  | Synthetic x, Synthetic y -> x = y
  | (Stored _ | Synthetic _), _ -> false

let find_by_id t id = find (fun n -> equal_id n.id id) t

let rec size t = List.fold_left (fun acc c -> acc + size c) 1 (child_nodes t)

let pp_id ppf = function
  | Stored { doc; start } -> Format.fprintf ppf "#%d.%d" doc start
  | Synthetic n -> Format.fprintf ppf "#s%d" n

let rec pp ppf t =
  Format.fprintf ppf "@[<hv 2><%s" t.tag;
  (match t.score with
  | Some s -> Format.fprintf ppf "[%g]" s
  | None -> ());
  List.iter (fun (k, v) -> Format.fprintf ppf " %s=%S" k v) t.attrs;
  Format.fprintf ppf ">";
  List.iter
    (fun c ->
      match c with
      | Node n -> Format.fprintf ppf "@,%a" pp n
      | Content s -> Format.fprintf ppf "%s" s)
    t.children;
  Format.fprintf ppf "</%s>@]" t.tag
