(** Grouping and ordering, inherited from TAX.

    Sec. 3.3.1 defines K-based thresholding in terms of existing
    operators: "a grouping on the data IR-nodes using an empty
    grouping basis with the ordering function based on the score; a
    projection is then applied to retain the leftmost K subtrees".
    This module provides that grouping operator and the derived
    top-K, which the tests check against {!Op_threshold}. *)

val group_tag : string
(** Tag of constructed group roots ([tix_group]). *)

val group_by :
  ?trace:Trace.t ->
  basis:(Stree.t -> string) ->
  ?order:(Stree.t -> Stree.t -> int) ->
  Stree.t list ->
  Stree.t list
(** Partition the collection by the grouping basis; each output tree
    is a [tix_group] root (with a [key] attribute) whose subtrees are
    the group's members, ordered by [order] (default: document
    order of arrival). Groups appear in order of first member. *)

val empty_basis : Stree.t -> string
(** The empty grouping basis: everything in one group. *)

val by_score_desc : Stree.t -> Stree.t -> int
(** Ordering function on scores, best first. *)

val leftmost : int -> Stree.t -> Stree.t list
(** Projection retaining the leftmost K subtrees of a group tree. *)

val top_k_via_grouping : int -> Stree.t list -> Stree.t list
(** The paper's encoding of the K-threshold: group with the empty
    basis, order by score, retain the leftmost K. Equals
    [Op_threshold.top_k_by_score] up to tie order. *)
