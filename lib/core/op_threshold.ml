type condition = Min_score of float | Top_rank of int
type tc = { var : int; condition : condition }

let match_scores pat var tree =
  List.filter_map
    (fun (n : Stree.t) -> n.score)
    (Matcher.matches_of_var pat var tree)

let satisfies_min pat var v tree =
  List.exists (fun s -> s > v) (match_scores pat var tree)

(* K-based thresholding needs the global ranking of matches across the
   collection (Sec. 5.3): compute the K-th best score and fall back to
   a min-score test at that cut, breaking ties by keeping them (the
   paper's definition is rank-based on scores). A bounded min-heap
   finds the K-th best in O(n log K) without sorting all scores. *)
let kth_best_score pat var k trees =
  if k <= 0 then None
  else begin
    let tk = Top_k.create k in
    List.iter
      (fun tree ->
        List.iter (fun s -> Top_k.add tk ~score:s ()) (match_scores pat var tree))
      trees;
    if Top_k.count tk < k then None else Top_k.cutoff tk
  end

let threshold ?(trace = Trace.disabled) (pat : Pattern.t) (tcs : tc list) trees
    =
  Trace.span_over trace "Threshold" trees @@ fun trees ->
  let keep_for tc =
    match tc.condition with
    | Min_score v -> fun tree -> satisfies_min pat tc.var v tree
    | Top_rank k -> begin
      match kth_best_score pat tc.var k trees with
      | None -> fun _ -> true (* fewer than K matches: keep everything *)
      | Some cut ->
        fun tree -> List.exists (fun s -> s >= cut) (match_scores pat tc.var tree)
    end
  in
  let preds = List.map keep_for tcs in
  List.filter (fun tree -> List.for_all (fun p -> p tree) preds) trees

let top_k_by_score k trees =
  if k <= 0 then []
  else begin
    (* the K-th best score via the bounded heap, then one linear pass
       keeping everything above the cut plus the first input-order
       trees at the cut — identical to a full stable sort truncated
       at K, without sorting the collection *)
    let tk = Top_k.create k in
    List.iter (fun t -> Top_k.add tk ~score:(Stree.score t) ()) trees;
    match Top_k.cutoff tk with
    | None ->
      (* fewer than K trees: all of them, best first *)
      List.stable_sort
        (fun a b -> compare (Stree.score b) (Stree.score a))
        trees
    | Some cut ->
      let above =
        List.filter (fun t -> Stree.score t > cut) trees
      in
      let at_cut = ref (k - List.length above) in
      let keep_at_cut =
        List.filter
          (fun t ->
            if Stree.score t = cut && !at_cut > 0 then begin
              decr at_cut;
              true
            end
            else false)
          trees
      in
      List.stable_sort
        (fun a b -> compare (Stree.score b) (Stree.score a))
        (above @ keep_at_cut)
  end
