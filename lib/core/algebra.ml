type plan =
  | Scan of Collection.t
  | Select of Pattern.t * plan
  | Project of {
      pattern : Pattern.t;
      pl : int list;
      drop_zero : bool;
      input : plan;
    }
  | Product of plan * plan
  | Join of Pattern.t * plan * plan
  | Threshold of Pattern.t * Op_threshold.tc list * plan
  | Pick of {
      pattern : Pattern.t;
      var : int;
      criterion : Op_pick.criterion;
      input : plan;
    }
  | Sort of plan
  | Limit of int * plan

let rec run ?governor ?(trace = Trace.disabled) plan =
  (* Every operator's output is accounted against the governor: one
     step per produced tree, plus the cardinality gate. The charge
     happens between operators, so a runaway plan is cut off at the
     first materialization past its budget. *)
  let account (c : Collection.t) =
    (match governor with
    | Some g ->
      let n = Collection.size c in
      Governor.tick_n g n;
      Governor.check_results g n;
      Governor.check_deadline g
    | None -> ());
    c
  in
  let run input = run ?governor ~trace input in
  (* The hooked operators record their own spans; the plain plan
     nodes (scan, project, sort, limit) get spans here. Spans appear
     in execution order — plan inputs before the operator itself. *)
  let local name input f =
    if Trace.enabled trace then Trace.span_over ?governor trace name input f
    else f input
  in
  account
    (match plan with
    | Scan c -> local "Scan" c Fun.id
    | Select (pat, input) -> Op_select.select ~trace pat (run input)
    | Project { pattern; pl; drop_zero; input } ->
      local "Project" (run input) (Op_project.project ~drop_zero pattern ~pl)
    | Product (a, b) -> Op_join.product ~trace (run a) (run b)
    | Join (pat, a, b) -> Op_join.join ~trace pat (run a) (run b)
    | Threshold (pat, tcs, input) ->
      Op_threshold.threshold ~trace pat tcs (run input)
    | Pick { pattern; var; criterion; input } ->
      Op_pick.apply ~trace pattern ~var criterion (run input)
    | Sort input -> local "Sort" (run input) Collection.sort_by_score
    | Limit (k, input) ->
      local "Limit" (run input) (List.filteri (fun i _ -> i < k)))

let rec pp_plan ppf = function
  | Scan c -> Format.fprintf ppf "Scan(%d trees)" (Collection.size c)
  | Select (_, input) -> Format.fprintf ppf "@[<v 2>Select@,%a@]" pp_plan input
  | Project { pl; input; _ } ->
    Format.fprintf ppf "@[<v 2>Project PL={%a}@,%a@]"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
         (fun ppf v -> Format.fprintf ppf "$%d" v))
      pl pp_plan input
  | Product (a, b) ->
    Format.fprintf ppf "@[<v 2>Product@,%a@,%a@]" pp_plan a pp_plan b
  | Join (_, a, b) ->
    Format.fprintf ppf "@[<v 2>Join@,%a@,%a@]" pp_plan a pp_plan b
  | Threshold (_, tcs, input) ->
    let pp_tc ppf (tc : Op_threshold.tc) =
      match tc.condition with
      | Op_threshold.Min_score v -> Format.fprintf ppf "$%d>%g" tc.var v
      | Op_threshold.Top_rank k -> Format.fprintf ppf "$%d:top-%d" tc.var k
    in
    Format.fprintf ppf "@[<v 2>Threshold %a@,%a@]"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         pp_tc)
      tcs pp_plan input
  | Pick { var; input; _ } ->
    Format.fprintf ppf "@[<v 2>Pick on $%d@,%a@]" var pp_plan input
  | Sort input -> Format.fprintf ppf "@[<v 2>Sort by score@,%a@]" pp_plan input
  | Limit (k, input) ->
    Format.fprintf ppf "@[<v 2>Limit %d@,%a@]" k pp_plan input

let explain plan = Format.asprintf "%a" pp_plan plan
