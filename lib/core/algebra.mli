(** Composable TIX plans.

    A plan is a tree of algebra operators over base collections; it
    documents a query the way the paper's Example 3.1 does (project,
    then pick, then select, then threshold) and can be printed with
    {!explain}. *)

type plan =
  | Scan of Collection.t
  | Select of Pattern.t * plan
  | Project of { pattern : Pattern.t; pl : int list; drop_zero : bool; input : plan }
  | Product of plan * plan
  | Join of Pattern.t * plan * plan
  | Threshold of Pattern.t * Op_threshold.tc list * plan
  | Pick of { pattern : Pattern.t; var : int; criterion : Op_pick.criterion; input : plan }
  | Sort of plan
  | Limit of int * plan

val run : ?governor:Governor.t -> ?trace:Trace.t -> plan -> Collection.t
(** Evaluate the plan bottom-up. With [governor], every operator's
    output cardinality is charged as steps and gated by the result
    cap, and the deadline is sampled between operators; a breached
    budget raises {!Governor.Resource_exhausted}. With [trace], each
    operator records a span with input/output cardinalities, in
    execution order (inputs before the consuming operator). *)

val explain : plan -> string
val pp_plan : Format.formatter -> plan -> unit
