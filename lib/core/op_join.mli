(** Scored join (Sec. 3.2.3): a selection over the product of two
    collections. Every pair of input trees is combined under a fresh
    [tix_prod_root]; join conditions in the selection pattern can be
    scored ([Pattern.Similarity] rules). *)

val product : ?trace:Trace.t -> Stree.t list -> Stree.t list -> Stree.t list
(** The scored product: each output root has tag [tix_prod_root], a
    fresh synthetic id and a null score. *)

val join :
  ?trace:Trace.t -> Pattern.t -> Stree.t list -> Stree.t list -> Stree.t list
(** [join pat c1 c2 = Op_select.select pat (product c1 c2)]. With
    [trace], the ["Product"] and ["Select"] spans nest under the
    ["Join"] span. *)

val prod_root_tag : string
