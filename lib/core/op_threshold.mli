(** The Threshold operator (Sec. 3.3.1).

    Filters a collection of scored trees by conditions on the data
    IR-nodes matching given pattern variables: a real threshold [V]
    keeps trees in which some match scores above [V]; an integer
    threshold [K] keeps trees containing one of the [K] best-scoring
    matches across the whole input collection. *)

type condition =
  | Min_score of float  (** strictly above the given value *)
  | Top_rank of int  (** rank at most K over the whole collection *)

type tc = { var : int; condition : condition }

val threshold :
  ?trace:Trace.t -> Pattern.t -> tc list -> Stree.t list -> Stree.t list
(** Trees must satisfy every condition to be retained; document
    order is preserved. *)

val top_k_by_score : int -> Stree.t list -> Stree.t list
(** Convenience: the K highest-scoring trees of a collection,
    best first (ties keep input order). Corresponds to thresholding
    on the collection roots. *)
