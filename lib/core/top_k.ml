type 'a t = {
  capacity : int;
  scores : float array;
  items : 'a option array;
  tie : 'a -> 'a -> int;
  mutable size : int;
}

let create ?(tie = fun _ _ -> 0) capacity =
  if capacity <= 0 then invalid_arg "Top_k.create";
  {
    capacity;
    scores = Array.make capacity 0.;
    items = Array.make capacity None;
    tie;
    size = 0;
  }

let swap t i j =
  let s = t.scores.(i) in
  t.scores.(i) <- t.scores.(j);
  t.scores.(j) <- s;
  let it = t.items.(i) in
  t.items.(i) <- t.items.(j);
  t.items.(j) <- it

(* entry [i] ranks strictly below entry [j]: lower score, or the tie
   order on equal scores — the root is then the unique worst entry,
   so eviction is deterministic even among tied scores *)
let below t i j =
  t.scores.(i) < t.scores.(j)
  || t.scores.(i) = t.scores.(j)
     &&
     match (t.items.(i), t.items.(j)) with
     | Some a, Some b -> t.tie a b < 0
     | _ -> false

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if below t i parent then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && below t l !smallest then smallest := l;
  if r < t.size && below t r !smallest then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let add t ~score item =
  if t.size < t.capacity then begin
    t.scores.(t.size) <- score;
    t.items.(t.size) <- Some item;
    t.size <- t.size + 1;
    sift_up t (t.size - 1)
  end
  else begin
    let enters =
      score > t.scores.(0)
      || score = t.scores.(0)
         &&
         match t.items.(0) with
         | Some root -> t.tie item root > 0
         | None -> false
    in
    if enters then begin
      t.scores.(0) <- score;
      t.items.(0) <- Some item;
      sift_down t 0
    end
  end

let count t = t.size
let cutoff t = if t.size < t.capacity then None else Some t.scores.(0)
let would_enter t score = t.size < t.capacity || score > t.scores.(0)

let to_sorted_list t =
  let entries = ref [] in
  for i = 0 to t.size - 1 do
    match t.items.(i) with
    | Some item -> entries := (t.scores.(i), item) :: !entries
    | None -> ()
  done;
  List.sort
    (fun (a, x) (b, y) -> match compare b a with 0 -> t.tie y x | c -> c)
    !entries
