type span = {
  mutable name : string;
  mutable input : int;
  mutable output : int;
  mutable est : int;
  mutable gov_steps : int;
  mutable elapsed_ns : int;
  mutable attrs : (string * string) list;
  mutable children : span list;
}

(* A frame remembers what was sampled at [enter] so [leave] can
   compute deltas without the span itself growing fields. *)
type frame = { sp : span; started_ns : int; steps_at_enter : int }

type t = {
  on : bool;
  mutable stack : frame list;
  mutable roots : span list;  (* reverse completion order *)
}

(* The shared disabled tracer: every hook degrades to one boolean
   load, no allocation, no clock sample. *)
let disabled = { on = false; stack = []; roots = [] }
let make () = { on = true; stack = []; roots = [] }
let enabled t = t.on

let now_ns () = Int64.to_int (Int64.of_float (Unix.gettimeofday () *. 1e9))

let fresh_span name =
  {
    name;
    input = -1;
    output = -1;
    est = -1;
    gov_steps = -1;
    elapsed_ns = 0;
    attrs = [];
    children = [];
  }

let enter ?(input = -1) ?governor t name =
  if t.on then begin
    let sp = fresh_span name in
    sp.input <- input;
    let steps_at_enter =
      match governor with Some g -> Governor.steps g | None -> -1
    in
    t.stack <- { sp; started_ns = now_ns (); steps_at_enter } :: t.stack
  end

let annotate t key value =
  if t.on then begin
    match t.stack with
    | { sp; _ } :: _ -> sp.attrs <- (key, value) :: sp.attrs
    | [] -> ()
  end

let set_input t n =
  if t.on then
    match t.stack with { sp; _ } :: _ -> sp.input <- n | [] -> ()

let leave ?(output = -1) ?governor t =
  if t.on then begin
    match t.stack with
    | [] -> ()
    | { sp; started_ns; steps_at_enter } :: rest ->
      sp.elapsed_ns <- max 0 (now_ns () - started_ns);
      if output >= 0 then sp.output <- output;
      (match governor with
      | Some g when steps_at_enter >= 0 ->
        sp.gov_steps <- Governor.steps g - steps_at_enter
      | Some _ | None -> ());
      sp.children <- List.rev sp.children;
      sp.attrs <- List.rev sp.attrs;
      t.stack <- rest;
      (match rest with
      | { sp = parent; _ } :: _ -> parent.children <- sp :: parent.children
      | [] -> t.roots <- sp :: t.roots)
  end

(* Close any frames a raising operator left open, so an exception
   unwinding through traced code still yields a well-formed tree. *)
let unwind t =
  if t.on then while t.stack <> [] do leave t done

let span ?input ?governor t name f =
  if not t.on then f ()
  else begin
    enter ?input ?governor t name;
    match f () with
    | v ->
      leave ?governor t;
      v
    | exception e ->
      leave ?governor t;
      raise e
  end

let span_list ?input ?governor t name f =
  if not t.on then f ()
  else begin
    enter ?input ?governor t name;
    match f () with
    | l ->
      leave ~output:(List.length l) ?governor t;
      l
    | exception e ->
      leave ?governor t;
      raise e
  end

(* For the emitter-shaped access methods, whose return value is the
   emitted cardinality. *)
let span_count ?input ?governor t name f =
  if not t.on then f ()
  else begin
    enter ?input ?governor t name;
    match f () with
    | n ->
      leave ~output:n ?governor t;
      n
    | exception e ->
      leave ?governor t;
      raise e
  end

(* The common operator shape: a list in, a list out. Cardinalities
   are only computed when the tracer is live. *)
let span_over ?governor t name input f =
  if not t.on then f input
  else begin
    enter ~input:(List.length input) ?governor t name;
    match f input with
    | l ->
      leave ~output:(List.length l) ?governor t;
      l
    | exception e ->
      leave ?governor t;
      raise e
  end

(* Graft a finished span (built by another tracer, e.g. one partition
   of a parallel query) under the innermost open span — or as a root
   when nothing is open. Children lists are kept reversed until
   [leave], so push like a completed child would be pushed. *)
let attach t sp =
  if t.on then begin
    match t.stack with
    | { sp = parent; _ } :: _ -> parent.children <- sp :: parent.children
    | [] -> t.roots <- sp :: t.roots
  end

let roots t = List.rev t.roots

let root t =
  match List.rev t.roots with
  | [ sp ] -> Some sp
  | [] -> None
  | first :: _ as all ->
    (* several completed top-level spans: wrap them so consumers
       always see one tree *)
    let wrapper = fresh_span "trace" in
    wrapper.children <- all;
    wrapper.elapsed_ns <-
      List.fold_left (fun acc sp -> acc + sp.elapsed_ns) 0 all;
    wrapper.input <- first.input;
    Some wrapper

(* Depth-first iteration over a finished span tree (parent first). *)
let rec iter_span f sp =
  f sp;
  List.iter (iter_span f) sp.children

(* Stamp planner estimates onto a finished span tree: each
   [(name, est)] pair lands on the first span with that name that
   does not already carry one, so repeated operator names (e.g. the
   per-partition spans of a parallel plan) take pairs in order. *)
let apply_estimates sp pairs =
  let remaining = ref pairs in
  iter_span
    (fun s ->
      if s.est < 0 then
        match List.assoc_opt s.name !remaining with
        | Some e ->
          s.est <- e;
          remaining := List.remove_assoc s.name !remaining
        | None -> ())
    sp

let rec pp_span_indent indent ppf sp =
  let card which v =
    if v < 0 then "" else Printf.sprintf " %s=%d" which v
  in
  Format.fprintf ppf "%s%s%s%s%s%s  %.3f ms" indent sp.name
    (card "in" sp.input) (card "out" sp.output)
    (card "est" sp.est)
    (card "steps" sp.gov_steps)
    (float_of_int sp.elapsed_ns /. 1e6);
  List.iter
    (fun (k, v) -> Format.fprintf ppf " %s=%s" k v)
    sp.attrs;
  List.iter
    (fun child ->
      Format.pp_print_cut ppf ();
      pp_span_indent (indent ^ "  ") ppf child)
    sp.children

let pp_span ppf sp =
  Format.fprintf ppf "@[<v>%a@]" (pp_span_indent "") sp

let span_to_string sp = Format.asprintf "%a" pp_span sp
