(** Bounded top-K accumulation (the K-threshold of Sec. 5.3).

    A fixed-capacity min-heap keeps the K best-scoring items seen so
    far in O(log K) per insertion, so K-thresholding composes with
    any score-emitting access method without materializing or sorting
    the full result. *)

type 'a t

val create : ?tie:('a -> 'a -> int) -> int -> 'a t
(** [create k] raises [Invalid_argument] when [k <= 0].

    [tie] totally orders items of equal score ([tie a b < 0] means
    [a] ranks below [b] and is evicted first); without it (the
    default), which tied item survives at the K-th rank is whichever
    the heap happens to hold. A deterministic tie order is what lets
    independently built accumulators (e.g. one per parallel
    partition) merge into exactly the sequential result. *)

val add : 'a t -> score:float -> 'a -> unit
(** When the accumulator is full, [item] enters iff it ranks strictly
    above the current K-th entry under (score, [tie]). *)

val count : 'a t -> int

val cutoff : 'a t -> float option
(** The current K-th best score, once K items have been seen. *)

val would_enter : 'a t -> float -> bool
(** Whether an item with this score would be retained by {!add} —
    the pruning test of max-score early termination: a candidate
    whose score upper bound fails [would_enter] can be skipped
    without scoring it exactly. With a [tie] order this is exact only
    for candidates ranking below every present tied entry — which
    holds when items arrive in worst-first tie order, as in
    ascending-doc-id scoring. *)

val to_sorted_list : 'a t -> (float * 'a) list
(** Best first, [tie]-best first among equal scores; does not clear
    the accumulator. *)
