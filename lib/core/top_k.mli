(** Bounded top-K accumulation (the K-threshold of Sec. 5.3).

    A fixed-capacity min-heap keeps the K best-scoring items seen so
    far in O(log K) per insertion, so K-thresholding composes with
    any score-emitting access method without materializing or sorting
    the full result. *)

type 'a t

val create : int -> 'a t
(** [create k] raises [Invalid_argument] when [k <= 0]. *)

val add : 'a t -> score:float -> 'a -> unit
val count : 'a t -> int

val cutoff : 'a t -> float option
(** The current K-th best score, once K items have been seen. *)

val would_enter : 'a t -> float -> bool
(** Whether an item with this score would be retained by {!add} —
    the pruning test of max-score early termination: a candidate
    whose score upper bound fails [would_enter] can be skipped
    without scoring it exactly. *)

val to_sorted_list : 'a t -> (float * 'a) list
(** Best first; does not clear the accumulator. *)
