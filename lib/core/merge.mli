(** Deterministic merge rules and the monotone θ threshold shared by
    every partitioned backend: local domain fan-out ({!Exec.Par}) and
    remote shard scatter-gather ({!Dist.Coordinator}) merge through
    this one implementation, so the invariants cannot diverge.

    All functions assume the per-range inputs come from disjoint
    ascending doc ranges that cover the corpus; under that premise the
    merged output is byte-identical to the unpartitioned answer, ties
    included. *)

val compare_doc_score : int * float -> int * float -> int
(** The ranked total order: score descending, doc id ascending on
    ties. This exact comparator cuts the k-th rank locally, sorts the
    final answer, and merges across ranges. *)

val concat_in_order : 'a list array -> 'a list * int
(** Merge document-ordered per-range results over disjoint ascending
    ranges: concatenation in range order, with the output
    cardinality. *)

val top_k : compare:('a -> 'a -> int) -> k:int -> 'a list -> 'a list
(** Sort under [compare] and keep the first [k]. *)

val merge_ranked : k:int -> (int * float) list array -> (int * float) list * int
(** Merge per-range ranked top-k lists: union, re-sort under
    {!compare_doc_score}, truncate to [k]; with the output
    cardinality. *)

(** Monotone shared pruning threshold. Each range publishes its local
    k-th-best score; θ is the running max, so it is always ≤ the final
    global cutoff and a bound may be pruned against it only with a
    strict compare ([bound < θ]) — equality can still win the global
    doc-id tie-break. *)
module Theta : sig
  type t = float Atomic.t

  val make : ?seed:float -> unit -> t
  (** Fresh threshold, [neg_infinity] unless [seed]ed — e.g. by a
      coordinator relaying another shard's published cutoff. *)

  val get : t -> float

  val publish : t -> float -> unit
  (** Monotone max: raises θ to the given cutoff if higher, never
      lowers it. Safe under concurrent publishers (CAS retry). *)

  val prunes : t -> float -> bool
  (** [prunes t bound] is [bound < get t]: true when a candidate whose
      score ceiling is [bound] provably cannot appear in (or reorder)
      the merged top-k. *)
end
