let prod_root_tag = "tix_prod_root"

let product ?(trace = Trace.disabled) c1 c2 =
  let body () =
    List.concat_map
      (fun a ->
        List.map
          (fun b -> Stree.make prod_root_tag [ Stree.Node a; Stree.Node b ])
          c2)
      c1
  in
  if not (Trace.enabled trace) then body ()
  else
    Trace.span_list
      ~input:(List.length c1 + List.length c2)
      trace "Product" body

let join ?(trace = Trace.disabled) pat c1 c2 =
  let body () = Op_select.select ~trace pat (product ~trace c1 c2) in
  if not (Trace.enabled trace) then body ()
  else
    Trace.span_list ~input:(List.length c1 + List.length c2) trace "Join" body
