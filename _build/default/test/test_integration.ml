(* End-to-end integration tests crossing every library: generate a
   corpus, load it, persist it, reopen it, and check that the whole
   stack — parser, store, indexes, access methods, query language,
   compiled plans — agrees with itself along every path. *)

let check = Alcotest.check
let int_ = Alcotest.int
let bool_ = Alcotest.bool

let cfg =
  {
    Workload.Corpus.articles = 30;
    seed = 1234;
    chapters_per_article = 2;
    sections_per_chapter = 2;
    paragraphs_per_section = 3;
    words_per_paragraph = 18;
    vocabulary = 400;
    planted_terms = [ ("integalpha", 120); ("integbeta", 60) ];
    planted_phrases = [ ("integone", "integtwo", 25) ];
  }

let db_with_trees = lazy (Store.Db.load (Workload.Corpus.generate cfg))

(* ------------------------------------------------------------------ *)
(* XML roundtrip at corpus scale: print every generated document and
   parse it back *)

let test_corpus_xml_roundtrip () =
  Seq.iter
    (fun (name, root) ->
      let printed = Xmlkit.Printer.to_string root in
      match Xmlkit.Parser.parse_string printed with
      | Ok reparsed ->
        if not (Xmlkit.Tree.equal root reparsed) then
          Alcotest.failf "%s does not roundtrip" name
      | Error e ->
        Alcotest.failf "%s: parse error %a" name Xmlkit.Parser.pp_error e)
    (Workload.Corpus.generate cfg)

(* loading from reparsed files equals loading from generated trees *)
let test_load_from_serialized_equals_direct () =
  let direct = Lazy.force db_with_trees in
  let reparsed =
    Store.Db.load
      (Seq.map
         (fun (name, root) ->
           (name, Xmlkit.Parser.parse_string_exn (Xmlkit.Printer.to_string root)))
         (Workload.Corpus.generate cfg))
  in
  check bool_ "same stats" true (Store.Db.stats direct = Store.Db.stats reparsed);
  let run db =
    Access.Term_join.to_list (Access.Ctx.of_db db)
      ~terms:[ "integalpha"; "integbeta" ]
  in
  check bool_ "same scored results" true (run direct = run reparsed)

(* ------------------------------------------------------------------ *)
(* persistence round trip at corpus scale *)

let test_persisted_pipeline () =
  let db = Lazy.force db_with_trees in
  let path = Filename.temp_file "tix-integ" ".tix" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Store.Db.save db path;
      let reopened = Store.Db.open_file_exn path in
      let ctx1 = Access.Ctx.of_db db and ctx2 = Access.Ctx.of_db reopened in
      (* every access method agrees across the save/open boundary *)
      let terms = [ "integalpha"; "integbeta" ] in
      check bool_ "termjoin" true
        (Access.Term_join.to_list ctx1 ~terms
        = Access.Term_join.to_list ctx2 ~terms);
      check bool_ "termjoin complex" true
        (Access.Term_join.to_list ~mode:Access.Counter_scoring.Complex ctx1 ~terms
        = Access.Term_join.to_list ~mode:Access.Counter_scoring.Complex ctx2 ~terms);
      check bool_ "phrasefinder" true
        (Access.Phrase_finder.to_list ctx1 ~phrase:[ "integone"; "integtwo" ]
        = Access.Phrase_finder.to_list ctx2 ~phrase:[ "integone"; "integtwo" ]);
      (* and the compiled query path works on the reopened image *)
      let src =
        {|
        for $a in document("article-*.xml")//article/descendant-or-self::*
        score $a using ScoreFoo($a, {"integalpha"}, {"integbeta"})
        pick $a using PickFoo()
        return <r><score>{$a/@score}</score>{$a}</r>
        sortby(score)
        threshold $a/@score > 0 stop after 10
        |}
      in
      match
        ( Query.Compile.run_string db src,
          Query.Compile.run_string reopened src )
      with
      | Ok a, Ok b ->
        check bool_ "compiled agree" true (a = b);
        check int_ "ten results" 10 (List.length a)
      | Error m, _ | _, Error m -> Alcotest.failf "compile failed: %s" m)

(* ------------------------------------------------------------------ *)
(* the three evaluation paths agree: interpreter, compiled plan, and
   hand-composed access methods *)

let test_three_paths_agree () =
  let db = Lazy.force db_with_trees in
  let src =
    {|
    for $a in document("article-*.xml")//article[author/sname = "Doe"]/descendant-or-self::*
    score $a using ScoreFoo($a, {"integalpha"}, {"integbeta"})
    return <r><score>{$a/@score}</score>{$a}</r>
    sortby(score)
    threshold $a/@score > 0 stop after 15
    |}
  in
  (* 1. interpreter *)
  let interpreter_scores =
    match Query.Eval.run_string (Query.Eval.create db) src with
    | Ok results ->
      List.map
        (fun r ->
          match Xmlkit.Traverse.find_first "score" r with
          | Some s -> float_of_string (String.trim (Xmlkit.Tree.all_text s))
          | None -> Alcotest.fail "missing score")
        results
    | Error m -> Alcotest.failf "interpreter: %s" m
  in
  (* 2. compiled plan *)
  let compiled_scores =
    match Query.Compile.run_string db src with
    | Ok nodes -> List.map (fun (n : Access.Scored_node.t) -> n.score) nodes
    | Error m -> Alcotest.failf "compile: %s" m
  in
  (* 3. hand-composed: structural join + TermJoin + top-k *)
  let ctx = Access.Ctx.of_db db in
  let pattern =
    let open Core.Pattern in
    make
      (pnode ~pred:(Tag "article") 1
         [
           pnode ~axis:Core.Pattern.Descendant ~pred:(Tag "author") 2
             [ pnode ~pred:(And (Tag "sname", Content_eq "Doe")) 3 [] ];
         ])
      []
  in
  let scored =
    Access.Pattern_exec.scored_matches ctx pattern ~struct_var:1
      ~terms:[ "integalpha"; "integbeta" ]
      ~weights:[| 0.8; 0.6 |]
    |> List.filter (fun (n : Access.Scored_node.t) -> n.score > 0.)
  in
  let manual_scores =
    List.map
      (fun (n : Access.Scored_node.t) -> n.score)
      (Access.Ranked.top_k 15 (fun ~emit () ->
           List.iter emit scored;
           List.length scored))
  in
  let close a b =
    List.length a = List.length b
    && List.for_all2 (fun x y -> abs_float (x -. y) < 1e-6) a b
  in
  check bool_ "interpreter = compiled" true
    (close interpreter_scores compiled_scores);
  check bool_ "compiled = hand-composed" true
    (close compiled_scores manual_scores)

(* ------------------------------------------------------------------ *)
(* algebra pipeline vs engine pipeline on one document *)

let test_algebra_vs_engine_on_document () =
  let db = Lazy.force db_with_trees in
  let ctx = Access.Ctx.of_db db in
  (* engine side: TermJoin scores for doc 0 *)
  let engine =
    List.filter
      (fun (n : Access.Scored_node.t) -> n.doc = 0)
      (Access.Term_join.to_list ctx ~terms:[ "integalpha" ])
  in
  (* algebra side: score every element of doc 0's tree with a
     single-term ScoreFoo at weight 1 *)
  let tree =
    match Store.Db.numbering db ~doc:0 with
    | Some num -> Core.Stree.of_numbered num ~doc:0
    | None -> Alcotest.fail "expected trees"
  in
  let scorer =
    Core.Scorers.score_foo ~primary_weight:1.0 ~primary:[ "integalpha" ]
      ~secondary:[] ()
  in
  let algebra =
    List.filter_map
      (fun (n : Core.Stree.t) ->
        let s = scorer.Core.Pattern.eval n in
        if s > 0. then
          match n.id with
          | Core.Stree.Stored { doc; start } -> Some ((doc, start), s)
          | Core.Stree.Synthetic _ -> None
        else None)
      (Core.Stree.self_or_descendants tree)
  in
  let engine_pairs =
    List.map
      (fun (n : Access.Scored_node.t) -> ((n.doc, n.start), n.score))
      engine
  in
  check bool_ "same scored elements" true (algebra = engine_pairs)

(* ------------------------------------------------------------------ *)
(* reviews join across generated collections *)

let test_review_similarity_join () =
  let docs =
    Seq.append
      (Workload.Corpus.generate cfg)
      (Workload.Corpus.generate_reviews cfg)
  in
  let options = { Store.Db.default_options with keep_trees = false } in
  let db = Store.Db.load ~options docs in
  let ctx = Access.Ctx.of_db db in
  let titles tag =
    match Store.Catalog.tag_id (Store.Db.catalog db) tag with
    | Some id ->
      Array.to_list (Store.Tag_index.nodes (Store.Db.tags db) ~tag:id)
      |> List.map (fun (i : Store.Tag_index.item) ->
             {
               Access.Scored_node.doc = i.doc;
               start = i.start;
               end_ = i.end_;
               level = i.level;
               tag = id;
               score = 1.;
             })
    | None -> []
  in
  let joined =
    Access.Score_merge.value_join
      ~condition:(Access.Score_merge.similarity_condition ctx ~min_sim:2.)
      (titles "article-title") (titles "title")
  in
  (* every article title matches at least its own review *)
  check bool_ "join non-trivial" true
    (List.length joined >= cfg.Workload.Corpus.articles / 2)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "integration"
    [
      ( "xml roundtrip",
        [
          tc "corpus serializes and reparses" `Quick test_corpus_xml_roundtrip;
          tc "load from files = load direct" `Quick
            test_load_from_serialized_equals_direct;
        ] );
      ("persistence", [ tc "full pipeline" `Quick test_persisted_pipeline ]);
      ( "agreement",
        [
          tc "interpreter = compiled = hand-composed" `Quick
            test_three_paths_agree;
          tc "algebra = engine per document" `Quick
            test_algebra_vs_engine_on_document;
        ] );
      ("join", [ tc "review similarity join" `Quick test_review_similarity_join ]);
    ]
