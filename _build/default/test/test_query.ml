(* Tests for the extended-XQuery front end: lexer, parser and the
   pipelined evaluator, replaying the paper's Fig. 10 queries against
   the Figure 1 database. *)

let check = Alcotest.check
let int_ = Alcotest.int
let bool_ = Alcotest.bool
let string_ = Alcotest.string

let db = lazy (Store.Db.of_documents Workload.Paper_db.documents)
let evaluator () = Query.Eval.create (Lazy.force db)

let run_ok src =
  match Query.Eval.run_string (evaluator ()) src with
  | Ok results -> results
  | Error msg -> Alcotest.failf "query failed: %s" msg

(* ------------------------------------------------------------------ *)
(* Lexer *)

let test_lexer_tokens () =
  let toks = List.map fst (Query.Lexer.tokenize "for $a in document(\"x\")//p") in
  check int_ "token count (incl. eof)" 10 (List.length toks);
  (match toks with
  | Query.Lexer.IDENT "for" :: Query.Lexer.VAR "a" :: Query.Lexer.IDENT "in" :: _
    ->
    ()
  | _ -> Alcotest.fail "unexpected prefix");
  ()

let test_lexer_operators () =
  let toks = List.map fst (Query.Lexer.tokenize ":= != <= >= < > = //") in
  check int_ "ops" 9 (List.length toks)

let test_lexer_dos () =
  match List.map fst (Query.Lexer.tokenize "descendant-or-self::*") with
  | [ Query.Lexer.DOS; Query.Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "expected DOS token"

let test_lexer_error () =
  match Query.Lexer.tokenize "for $a in #" with
  | exception Query.Lexer.Error _ -> ()
  | _ -> Alcotest.fail "expected a lexer error"

(* ------------------------------------------------------------------ *)
(* Parser *)

let parse_ok src =
  match Query.Parser.parse src with
  | Ok q -> q
  | Error e -> Alcotest.failf "parse error: %a" Query.Parser.pp_error e

let test_parse_query1 () =
  let q =
    parse_ok
      {|
      for $a in document("articles.xml")//article/descendant-or-self::*
      score $a using ScoreFoo($a, {"search engine"},
                              {"internet", "information retrieval"})
      pick $a using PickFoo()
      return <result><score>{$a/@score}</score>{$a}</result>
      sortby(score)
      threshold $a/@score > 4 stop after 5
      |}
  in
  check int_ "three clauses" 3 (List.length q.Query.Ast.clauses);
  check (Alcotest.option string_) "sortby" (Some "score") q.Query.Ast.sortby;
  (match q.Query.Ast.thresh with
  | Some th ->
    check (Alcotest.float 1e-9) "threshold value" 4. th.Query.Ast.t_value;
    check (Alcotest.option int_) "stop after" (Some 5) th.Query.Ast.stop_after
  | None -> Alcotest.fail "expected threshold")

let test_parse_predicate () =
  let q =
    parse_ok
      {|
      for $a in document("articles.xml")//article[author/sname = "Doe"]
      return <r>{$a}</r>
      |}
  in
  match q.Query.Ast.clauses with
  | [ Query.Ast.For (_, Query.Ast.Path (_, steps)) ] ->
    let step = List.nth steps 0 in
    check int_ "one predicate" 1 (List.length step.Query.Ast.predicates)
  | _ -> Alcotest.fail "expected one for clause with a path"

let test_parse_let_and_where () =
  let q =
    parse_ok
      {|
      for $a in document("a")//x
      let $s := ScoreSim($a/text(), "hello world")
      where $s > 1
      return <r>{$s}</r>
      |}
  in
  check int_ "clauses" 3 (List.length q.Query.Ast.clauses)

let test_parse_errors () =
  let fails src =
    match Query.Parser.parse src with
    | Ok _ -> Alcotest.failf "expected parse failure: %s" src
    | Error _ -> ()
  in
  fails "";
  fails "for $a in";
  fails "for $a in document(\"x\")//p";
  (* missing return *)
  fails "for $a in document(\"x\")//p return <r>{$a}</s>";
  (* mismatched tags *)
  fails "return <r></r>"

let test_parse_roundtrip_pp () =
  let q =
    parse_ok
      {|
      for $a in document("articles.xml")//article
      score $a using ScoreFoo($a, {"x"}, {"y"})
      return <r>{$a/@score}</r>
      sortby(score)
      |}
  in
  let printed = Format.asprintf "%a" Query.Ast.pp q in
  check bool_ "prints something" true (String.length printed > 40)

(* ------------------------------------------------------------------ *)
(* Evaluation: Query 1 *)

let query1 =
  {|
  for $a in document("articles.xml")//article/descendant-or-self::*
  score $a using ScoreFoo($a, {"search engine"},
                          {"internet", "information retrieval"})
  return <result><score>{$a/@score}</score>{$a}</result>
  sortby(score)
  threshold $a/@score > 0 stop after 5
  |}

let score_of (e : Xmlkit.Tree.element) =
  match Xmlkit.Traverse.find_first "score" e with
  | Some s -> float_of_string (String.trim (Xmlkit.Tree.all_text s))
  | None -> Alcotest.fail "result without a score"

let test_query1 () =
  let results = run_ok query1 in
  check int_ "five results" 5 (List.length results);
  let scores = List.map score_of results in
  (* ranked: 5.6 (article), 5.0 (chapter), 3.6 (section), 1.4, 1.4 *)
  check (Alcotest.list (Alcotest.float 1e-6)) "ranked scores"
    [ 5.6; 5.0; 3.6; 1.4; 1.4 ] scores

let test_query1_threshold_v () =
  let results =
    run_ok
      {|
      for $a in document("articles.xml")//article/descendant-or-self::*
      score $a using ScoreFoo($a, {"search engine"},
                              {"internet", "information retrieval"})
      return <result><score>{$a/@score}</score>{$a}</result>
      sortby(score)
      threshold $a/@score > 4
      |}
  in
  check int_ "two results above 4" 2 (List.length results)

(* ------------------------------------------------------------------ *)
(* Evaluation: Query 2 (structural predicate) *)

let query2 =
  {|
  for $a in document("articles.xml")//article[author/sname = "Doe"]/descendant-or-self::*
  score $a using ScoreFoo($a, {"search engine"},
                          {"internet", "information retrieval"})
  pick $a using PickFoo()
  return <result><score>{$a/@score}</score>{$a}</result>
  sortby(score)
  threshold $a/@score > 0 stop after 5
  |}

let test_query2 () =
  let results = run_ok query2 in
  (* after Pick, the chapter (5.0) leads; redundant ancestors/
     descendants are eliminated *)
  check bool_ "some results" true (results <> []);
  let first = List.hd results in
  check (Alcotest.float 1e-6) "top score is the chapter" 5.0 (score_of first);
  (* the picked chapter element is embedded in the result *)
  check bool_ "chapter embedded" true
    (Xmlkit.Traverse.find_first "chapter" first <> None)

let test_query2_no_doe () =
  let results =
    run_ok
      {|
      for $a in document("articles.xml")//article[author/sname = "Smith"]/descendant-or-self::*
      score $a using ScoreFoo($a, {"search engine"}, {})
      return <r>{$a}</r>
      |}
  in
  check int_ "no matching article" 0 (List.length results)

(* ------------------------------------------------------------------ *)
(* Evaluation: Query 3 (similarity join) *)

let query3 =
  {|
  for $a in document("articles.xml")//article[author/sname = "Doe"]
  for $b in document("review-*.xml")//review
  let $sim := ScoreSim($a/article-title/text(), $b/title/text())
  where $sim > 1
  for $d in $a/descendant-or-self::*
  score $d using ScoreFoo($d, {"search engine"},
                          {"internet", "information retrieval"})
  pick $d using PickFoo()
  let $total := ScoreBar(decimal($sim), $d/@score)
  return <hit><score>{$total}</score>{$d}{$b}</hit>
  sortby(score)
  threshold $d/@score > 0 stop after 3
  |}

let test_query3 () =
  let results = run_ok query3 in
  check int_ "three hits" 3 (List.length results);
  let first = List.hd results in
  (* chapter score 5.0 + similarity 2 ("Internet Technologies") *)
  check (Alcotest.float 1e-6) "top combined score" 7.0 (score_of first);
  check bool_ "review embedded" true
    (Xmlkit.Traverse.find_first "review" first <> None)

let test_query3_where_filters () =
  (* review 2 ("WWW Technologies") has similarity 1, filtered by
     where $sim > 1 *)
  let results = run_ok query3 in
  List.iter
    (fun r ->
      match Xmlkit.Traverse.find_first "review" r with
      | Some review ->
        check (Alcotest.option string_) "only review 1" (Some "1")
          (Xmlkit.Tree.attr review "id")
      | None -> Alcotest.fail "expected a review")
    results

(* ------------------------------------------------------------------ *)
(* Evaluation details *)

let test_attribute_access () =
  let results =
    run_ok
      {|
      for $r in document("review-*.xml")//review[@id = "2"]
      return <out>{$r/title/text()}</out>
      |}
  in
  check int_ "one review" 1 (List.length results);
  check string_ "title text" "WWW Technologies"
    (Xmlkit.Tree.all_text (List.hd results))

let test_rating_comparison () =
  let results =
    run_ok
      {|
      for $r in document("review-*.xml")//review
      where $r/rating > 4
      return <out>{$r/@id}</out>
      |}
  in
  check int_ "one high rating" 1 (List.length results);
  check string_ "review 1" "1" (Xmlkit.Tree.all_text (List.hd results))

let test_bm25_scoring () =
  let results =
    run_ok
      {|
      for $a in document("articles.xml")//p
      score $a using bm25($a, {"search"})
      return <r><score>{$a/@score}</score></r>
      sortby(score)
      |}
  in
  check int_ "all paragraphs" 7 (List.length results);
  check bool_ "top paragraph scored" true (score_of (List.hd results) > 0.);
  check bool_ "non-matching scored zero" true
    (score_of (List.nth results 6) = 0.)

let test_tfidf_scoring () =
  let results =
    run_ok
      {|
      for $a in document("articles.xml")//p
      score $a using tfidf($a, {"search"})
      return <r><score>{$a/@score}</score></r>
      sortby(score)
      |}
  in
  check int_ "all paragraphs" 7 (List.length results);
  check bool_ "top paragraph scored" true (score_of (List.hd results) > 0.)

let test_unknown_function () =
  match Query.Eval.run_string (evaluator ()) "for $a in document(\"articles.xml\")//p score $a using Nope($a) return <r>{$a}</r>" with
  | Error msg -> check bool_ "mentions function" true
      (String.length msg > 0)
  | Ok _ -> Alcotest.fail "expected an error"

let test_unbound_variable () =
  match Query.Eval.run_string (evaluator ()) "for $a in document(\"articles.xml\")//p return <r>{$b}</r>" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected an error"

let test_custom_function () =
  let ev = evaluator () in
  Query.Functions.register_scoring (Query.Eval.functions ev) "Constant"
    (fun _ _ -> 2.5);
  match
    Query.Eval.run_string ev
      {|
      for $a in document("articles.xml")//chapter
      score $a using Constant($a)
      return <r><score>{$a/@score}</score></r>
      |}
  with
  | Ok results ->
    check int_ "three chapters" 3 (List.length results);
    List.iter (fun r -> check (Alcotest.float 1e-9) "score" 2.5 (score_of r)) results
  | Error msg -> Alcotest.failf "query failed: %s" msg

let test_document_glob () =
  let results =
    run_ok {|
      for $r in document("review-*.xml")//review
      return <r>{$r/@id}</r>
      |}
  in
  check int_ "both reviews" 2 (List.length results)


let test_and_or () =
  let results =
    run_ok
      {|
      for $p in document("articles.xml")//p
      where count({"search engine"}, $p) > 0
        and count({"information retrieval"}, $p) > 0
      return <hit>{$p}</hit>
      |}
  in
  (* only #a19 and #a20 contain both *)
  check int_ "and" 2 (List.length results);
  let results =
    run_ok
      {|
      for $p in document("articles.xml")//p
      where count({"search engine"}, $p) > 0
        or count({"information retrieval"}, $p) > 0
      return <hit>{$p}</hit>
      |}
  in
  check int_ "or" 3 (List.length results)

let test_count_phrase_set () =
  let results =
    run_ok
      {|
      for $a in document("articles.xml")//article
      let $n := count({"search engine", "information retrieval"}, $a)
      return <n>{$n}</n>
      |}
  in
  (* 4 "search engine(s)" + 3 "information retrieval" *)
  check string_ "summed phrase counts" "7"
    (String.trim (Xmlkit.Tree.all_text (List.hd results)))

let test_or_precedence () =
  (* and binds tighter than or: false and false or true = true *)
  let results =
    run_ok
      {|
      for $a in document("articles.xml")//article
      where 0 > 1 and 0 > 1 or 1 > 0
      return <r>yes</r>
      |}
  in
  check int_ "kept" 1 (List.length results)


(* ------------------------------------------------------------------ *)
(* Compilation to the engine path *)

let compiled_scores db src =
  match Query.Compile.run_string db src with
  | Ok nodes -> List.map (fun (n : Access.Scored_node.t) -> n.score) nodes
  | Error msg -> Alcotest.failf "compile failed: %s" msg

let interpreted_scores src =
  List.map score_of (run_ok src)

let close_lists a b =
  List.length a = List.length b
  && List.for_all2 (fun x y -> abs_float (x -. y) < 1e-6) a b

let test_compile_query1_equivalence () =
  let src =
    {|
    for $a in document("articles.xml")//article/descendant-or-self::*
    score $a using ScoreFoo($a, {"search"}, {"internet", "retrieval"})
    return <r><score>{$a/@score}</score>{$a}</r>
    sortby(score)
    threshold $a/@score > 0 stop after 5
    |}
  in
  let db = Lazy.force db in
  check bool_ "compiled = interpreted" true
    (close_lists (compiled_scores db src) (interpreted_scores src))

let test_compile_query2_equivalence () =
  let src =
    {|
    for $a in document("articles.xml")//article[author/sname = "Doe"]/descendant-or-self::*
    score $a using ScoreFoo($a, {"search"}, {"internet", "retrieval"})
    pick $a using PickFoo()
    return <r><score>{$a/@score}</score>{$a}</r>
    sortby(score)
    threshold $a/@score > 0 stop after 5
    |}
  in
  let db = Lazy.force db in
  check bool_ "compiled = interpreted with pick" true
    (close_lists (compiled_scores db src) (interpreted_scores src))

let test_compile_works_without_trees () =
  (* the compiled path never touches retained trees *)
  let options = { Store.Db.default_options with keep_trees = false } in
  let db = Store.Db.of_documents ~options Workload.Paper_db.documents in
  let src =
    {|
    for $a in document("articles.xml")//article/descendant-or-self::*
    score $a using ScoreFoo($a, {"search"}, {})
    return <r>{$a}</r>
    sortby(score)
    threshold $a/@score > 0
    |}
  in
  match Query.Compile.run_string db src with
  | Ok nodes -> check bool_ "results" true (nodes <> [])
  | Error msg -> Alcotest.failf "compile failed: %s" msg

let test_compile_anchor_only () =
  (* no descendant-or-self step: the anchor itself is scored *)
  let src =
    {|
    for $a in document("articles.xml")//chapter
    score $a using ScoreFoo($a, {"search"}, {})
    return <r><score>{$a/@score}</score></r>
    sortby(score)
    threshold $a/@score > 0
    |}
  in
  let db = Lazy.force db in
  check bool_ "anchor-only equivalence" true
    (close_lists (compiled_scores db src) (interpreted_scores src))

let test_compile_rejects () =
  let rejects src =
    match Query.Parser.parse src with
    | Error _ -> Alcotest.fail "expected the query to parse"
    | Ok q -> begin
      match Query.Compile.compile q with
      | Ok _ -> Alcotest.failf "expected compile rejection: %s" src
      | Error _ -> ()
    end
  in
  (* multi-word phrase *)
  rejects
    {|
    for $a in document("d")//p
    score $a using ScoreFoo($a, {"search engine"}, {})
    return <r>{$a}</r>
    |};
  (* join shape *)
  rejects
    {|
    for $a in document("d")//p
    for $b in document("e")//q
    score $a using ScoreFoo($a, {"x"}, {})
    return <r>{$a}</r>
    |};
  (* unsupported scorer *)
  rejects
    {|
    for $a in document("d")//p
    score $a using bm25($a, {"x"})
    return <r>{$a}</r>
    |}

let test_compile_explain () =
  let src =
    {|
    for $a in document("articles.xml")//article[author/sname = "Doe"]/descendant-or-self::*
    score $a using ScoreFoo($a, {"search"}, {"internet"})
    pick $a using PickFoo()
    return <r>{$a}</r>
    sortby(score)
    threshold $a/@score > 1 stop after 3
    |}
  in
  match Query.Parser.parse src with
  | Error _ -> Alcotest.fail "parse"
  | Ok q -> begin
    match Query.Compile.compile q with
    | Ok plan ->
      let text = Query.Compile.explain plan in
      check bool_ "mentions terms" true
        (String.length text > 0
        &&
        let has sub =
          let rec find i =
            i + String.length sub <= String.length text
            && (String.sub text i (String.length sub) = sub || find (i + 1))
          in
          find 0
        in
        has "search" && has "Pick" && has "> 1")
    | Error msg -> Alcotest.failf "compile failed: %s" msg
  end


(* ------------------------------------------------------------------ *)
(* Generated-workload fuzzing *)

let fuzz_corpus =
  lazy
    (let cfg =
       {
         Workload.Corpus.default with
         articles = 8;
         seed = 31;
         chapters_per_article = 2;
         sections_per_chapter = 2;
         paragraphs_per_section = 2;
         words_per_paragraph = 12;
         vocabulary = 80;
         planted_terms =
           [ ("fuzzalpha", 30); ("fuzzbeta", 12); ("fuzzgamma", 5) ];
       }
     in
     Store.Db.load (Workload.Corpus.generate cfg))

let fuzz_spec =
  {
    Workload.Query_gen.default_spec with
    terms = [ "fuzzalpha"; "fuzzbeta"; "fuzzgamma" ];
  }

let test_fuzz_interpreter_total () =
  (* every generated query parses and evaluates without raising *)
  let db = Lazy.force fuzz_corpus in
  let evaluator = Query.Eval.create db in
  List.iteri
    (fun i src ->
      match Query.Eval.run_string evaluator src with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "query %d failed: %s\n%s" i msg src)
    (Workload.Query_gen.generate ~count:40 fuzz_spec)

let test_fuzz_compiled_equivalence () =
  (* whenever a generated query compiles, the engine path agrees with
     the interpreter on the ranked score sequence *)
  let db = Lazy.force fuzz_corpus in
  let evaluator = Query.Eval.create db in
  let compared = ref 0 in
  List.iteri
    (fun i src ->
      match Query.Parser.parse src with
      | Error e -> Alcotest.failf "query %d: parse error %a" i Query.Parser.pp_error e
      | Ok q -> begin
        match Query.Compile.compile q with
        | Error _ -> ()
        | Ok plan ->
          incr compared;
          let compiled =
            List.map
              (fun (n : Access.Scored_node.t) -> n.score)
              (Query.Compile.execute db plan)
          in
          let interpreted =
            match Query.Eval.run_string evaluator src with
            | Ok results -> List.map score_of results
            | Error msg -> Alcotest.failf "query %d: interpreter: %s" i msg
          in
          if not (close_lists compiled interpreted) then
            Alcotest.failf "query %d diverges:\n%s\ncompiled %d, interpreted %d"
              i src (List.length compiled) (List.length interpreted)
      end)
    (Workload.Query_gen.generate ~count:40 fuzz_spec);
  check bool_ "some queries compiled" true (!compared > 10)


(* ------------------------------------------------------------------ *)
(* dialect corners *)

let test_constructor_attributes () =
  let results =
    run_ok
      {|
      for $r in document("review-*.xml")//review
      return <out id={$r/@id} kind="review">{$r/rating/text()}</out>
      |}
  in
  check int_ "two" 2 (List.length results);
  let first = List.hd results in
  check (Alcotest.option string_) "copied id" (Some "1")
    (Xmlkit.Tree.attr first "id");
  check (Alcotest.option string_) "literal attr" (Some "review")
    (Xmlkit.Tree.attr first "kind")

let test_nested_constructors () =
  let results =
    run_ok
      {|
      for $a in document("articles.xml")//article
      return <wrap><inner><deep>{$a/article-title/text()}</deep></inner></wrap>
      |}
  in
  let first = List.hd results in
  match Xmlkit.Traverse.find_first "deep" first with
  | Some d -> check string_ "deep text" "Internet Technologies" (Xmlkit.Tree.all_text d)
  | None -> Alcotest.fail "expected nested structure"

let test_inner_for_over_variable () =
  let results =
    run_ok
      {|
      for $a in document("articles.xml")//chapter
      for $p in $a/section/p
      return <r>{$p}</r>
      |}
  in
  (* sections' direct p children: 1 + 1 + 3 *)
  check int_ "five paragraphs" 5 (List.length results)

let test_exists_predicate () =
  let results =
    run_ok
      {|
      for $r in document("review-*.xml")//review[reviewer/sname]
      return <r>{$r/@id}</r>
      |}
  in
  (* only review 1 has a structured reviewer with an sname *)
  check int_ "one review" 1 (List.length results);
  check string_ "review 1" "1" (Xmlkit.Tree.all_text (List.hd results))

let test_text_comparison_in_predicate () =
  let results =
    run_ok
      {|
      for $r in document("review-*.xml")//review[title/text() = "WWW Technologies"]
      return <r>{$r/@id}</r>
      |}
  in
  check int_ "one match" 1 (List.length results);
  check string_ "review 2" "2" (Xmlkit.Tree.all_text (List.hd results))

let test_wildcard_child () =
  let results =
    run_ok
      {|
      for $c in document("articles.xml")//author/*
      return <r>{$c}</r>
      |}
  in
  (* fname and sname *)
  check int_ "two children" 2 (List.length results)

let test_let_shadowing () =
  let results =
    run_ok
      {|
      for $a in document("articles.xml")//article
      let $x := 1
      let $x := 2
      where $x = 2
      return <r>ok</r>
      |}
  in
  check int_ "inner binding wins" 1 (List.length results)

let test_missing_attribute_is_empty () =
  let results =
    run_ok
      {|
      for $a in document("articles.xml")//article
      where $a/@nonexistent = ""
      return <r>ok</r>
      |}
  in
  check int_ "missing attr compares as empty" 1 (List.length results)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "query"
    [
      ( "lexer",
        [
          tc "tokens" `Quick test_lexer_tokens;
          tc "operators" `Quick test_lexer_operators;
          tc "descendant-or-self" `Quick test_lexer_dos;
          tc "error" `Quick test_lexer_error;
        ] );
      ( "parser",
        [
          tc "query 1" `Quick test_parse_query1;
          tc "predicate" `Quick test_parse_predicate;
          tc "let/where" `Quick test_parse_let_and_where;
          tc "errors" `Quick test_parse_errors;
          tc "pretty print" `Quick test_parse_roundtrip_pp;
        ] );
      ( "query 1",
        [
          tc "ranked results" `Quick test_query1;
          tc "V-threshold" `Quick test_query1_threshold_v;
        ] );
      ( "query 2",
        [
          tc "pick + rank" `Quick test_query2;
          tc "no matching author" `Quick test_query2_no_doe;
        ] );
      ( "query 3",
        [
          tc "similarity join" `Quick test_query3;
          tc "where filters reviews" `Quick test_query3_where_filters;
        ] );
      ( "compile",
        [
          tc "query 1 equivalence" `Quick test_compile_query1_equivalence;
          tc "query 2 equivalence (pick)" `Quick test_compile_query2_equivalence;
          tc "works without trees" `Quick test_compile_works_without_trees;
          tc "anchor only" `Quick test_compile_anchor_only;
          tc "rejections" `Quick test_compile_rejects;
          tc "explain" `Quick test_compile_explain;
        ] );
      ( "dialect corners",
        [
          tc "constructor attributes" `Quick test_constructor_attributes;
          tc "nested constructors" `Quick test_nested_constructors;
          tc "inner for over variable" `Quick test_inner_for_over_variable;
          tc "existence predicate" `Quick test_exists_predicate;
          tc "text() comparison" `Quick test_text_comparison_in_predicate;
          tc "wildcard child" `Quick test_wildcard_child;
          tc "let shadowing" `Quick test_let_shadowing;
          tc "missing attribute" `Quick test_missing_attribute_is_empty;
        ] );
      ( "fuzz",
        [
          tc "interpreter total" `Quick test_fuzz_interpreter_total;
          tc "compiled equivalence" `Quick test_fuzz_compiled_equivalence;
        ] );
      ( "details",
        [
          tc "attribute predicate" `Quick test_attribute_access;
          tc "numeric comparison" `Quick test_rating_comparison;
          tc "tfidf" `Quick test_tfidf_scoring;
          tc "bm25" `Quick test_bm25_scoring;
          tc "unknown function" `Quick test_unknown_function;
          tc "unbound variable" `Quick test_unbound_variable;
          tc "custom function" `Quick test_custom_function;
          tc "document glob" `Quick test_document_glob;
          tc "and/or" `Quick test_and_or;
          tc "count over phrase sets" `Quick test_count_phrase_set;
          tc "or precedence" `Quick test_or_precedence;
        ] );
    ]
