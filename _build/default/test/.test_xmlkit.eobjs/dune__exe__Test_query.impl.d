test/test_query.ml: Access Alcotest Format Lazy List Query Store String Workload Xmlkit
