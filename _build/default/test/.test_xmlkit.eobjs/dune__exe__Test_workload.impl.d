test/test_workload.ml: Access Alcotest Array Ir List Option Printf Random Seq Store String Workload Xmlkit
