test/test_store.ml: Access Alcotest Buffer Bytes Char Filename Fun Ir Lazy List Printf QCheck QCheck_alcotest Store String Sys Workload Xmlkit
