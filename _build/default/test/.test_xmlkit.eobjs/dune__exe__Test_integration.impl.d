test/test_integration.ml: Access Alcotest Array Core Filename Fun Lazy List Query Seq Store String Sys Workload Xmlkit
