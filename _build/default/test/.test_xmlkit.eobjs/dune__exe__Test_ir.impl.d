test/test_ir.ml: Alcotest Buffer Bytes Ir List Printf QCheck QCheck_alcotest String
