test/test_core.ml: Alcotest Core Ir Lazy List Option QCheck QCheck_alcotest String Workload Xmlkit
