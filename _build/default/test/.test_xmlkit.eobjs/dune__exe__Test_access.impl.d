test/test_access.ml: Access Alcotest Array Core Lazy List Option Printf QCheck QCheck_alcotest Seq Store String Workload Xmlkit
