test/test_fault.ml: Access Alcotest Bytes Char Core Filename Fun List Option Query Store String Sys Workload Xmlkit
