test/test_xmlkit.ml: Alcotest Array Buffer List Option QCheck QCheck_alcotest String Xmlkit
