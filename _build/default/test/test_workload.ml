(* Tests for the synthetic corpus generator: planted frequencies are
   exact, generation is deterministic, and structure matches the
   configuration. *)

let check = Alcotest.check
let int_ = Alcotest.int
let bool_ = Alcotest.bool

let small_cfg =
  {
    Workload.Corpus.articles = 6;
    seed = 11;
    chapters_per_article = 2;
    sections_per_chapter = 2;
    paragraphs_per_section = 3;
    words_per_paragraph = 20;
    vocabulary = 200;
    planted_terms = [ ("plantedone", 25); ("plantedtwo", 7) ];
    planted_phrases = [ ("phfirst", "phsecond", 9) ];
  }

let db_of cfg =
  let options = { Store.Db.default_options with keep_trees = false } in
  Store.Db.load ~options (Workload.Corpus.generate cfg)

let test_zipf_bounds () =
  let z = Workload.Zipf.create 100 in
  let state = Random.State.make [| 1 |] in
  for _ = 1 to 1000 do
    let r = Workload.Zipf.sample z state in
    if r < 0 || r >= 100 then Alcotest.fail "rank out of bounds"
  done;
  check int_ "support" 100 (Workload.Zipf.support z)

let test_zipf_skew () =
  let z = Workload.Zipf.create 1000 in
  let state = Random.State.make [| 2 |] in
  let low = ref 0 in
  let n = 5000 in
  for _ = 1 to n do
    if Workload.Zipf.sample z state < 10 then incr low
  done;
  (* the top-10 ranks of a 1000-word zipf(1.1) carry well over a
     third of the mass *)
  check bool_ "skewed towards head" true (!low > n / 3)

let test_text_gen_deterministic () =
  let g = Workload.Text_gen.create ~vocabulary:100 () in
  let s1 =
    Workload.Text_gen.sentence g (Random.State.make [| 5 |]) ~min_words:5
      ~max_words:10
  in
  let s2 =
    Workload.Text_gen.sentence g (Random.State.make [| 5 |]) ~min_words:5
      ~max_words:10
  in
  check bool_ "same seed, same sentence" true (s1 = s2);
  check bool_ "length bounds" true
    (List.length s1 >= 5 && List.length s1 <= 10)

let test_corpus_structure () =
  let docs = List.of_seq (Workload.Corpus.generate small_cfg) in
  check int_ "article count" 6 (List.length docs);
  let _, first = List.hd docs in
  check bool_ "root is article" true (first.Xmlkit.Tree.tag = "article");
  let chapters = Xmlkit.Traverse.find_all "chapter" first in
  check int_ "chapters" 2 (List.length chapters);
  let sections = Xmlkit.Traverse.find_all "section" first in
  check int_ "sections" 4 (List.length sections);
  let ps = Xmlkit.Traverse.find_all "p" first in
  check int_ "paragraphs" 12 (List.length ps);
  check bool_ "has author sname" true
    (Xmlkit.Traverse.find_first "sname" first <> None)

let test_corpus_planted_frequencies () =
  let db = db_of small_cfg in
  let idx = Store.Db.index db in
  check int_ "plantedone freq" 25
    (Ir.Inverted_index.collection_freq idx "plantedone");
  check int_ "plantedtwo freq" 7
    (Ir.Inverted_index.collection_freq idx "plantedtwo");
  (* phrase plants contribute to each term's frequency *)
  check int_ "phfirst freq" 9 (Ir.Inverted_index.collection_freq idx "phfirst");
  check int_ "phsecond freq" 9
    (Ir.Inverted_index.collection_freq idx "phsecond")

let test_corpus_planted_phrases () =
  let db = db_of small_cfg in
  let ctx = Access.Ctx.of_db db in
  let total =
    Access.Phrase_finder.total_occurrences ctx ~phrase:[ "phfirst"; "phsecond" ]
  in
  (* every planted pair is adjacent; random text cannot produce the
     planted pseudo-terms *)
  check int_ "phrase occurrences" 9 total

let test_corpus_deterministic () =
  let stats cfg = Store.Db.stats (db_of cfg) in
  let s1 = stats small_cfg and s2 = stats small_cfg in
  check bool_ "same seed, same corpus" true (s1 = s2);
  let s3 = stats { small_cfg with seed = 99 } in
  check bool_ "different seed, different corpus" true
    (s1.Store.Db.occurrences <> s3.Store.Db.occurrences)

let test_corpus_seq_reusable () =
  let seq = Workload.Corpus.generate small_cfg in
  let n1 = Seq.length seq and n2 = Seq.length seq in
  check int_ "sequence re-consumable" n1 n2

let test_corpus_capacity_check () =
  let cfg =
    { small_cfg with articles = 1; planted_terms = [ ("x", 1_000_000) ] }
  in
  Alcotest.check_raises "capacity exceeded"
    (Invalid_argument "Corpus.generate: planted occurrences exceed corpus capacity")
    (fun () ->
      ignore
        (Workload.Corpus.generate cfg : (string * Xmlkit.Tree.element) Seq.t))

let test_paper_db_shape () =
  check int_ "three documents" 3 (List.length Workload.Paper_db.documents);
  check int_ "article elements" 24 (Xmlkit.Tree.size Workload.Paper_db.articles);
  let fig5_text = Xmlkit.Tree.all_text Workload.Paper_db.articles in
  check int_ "search engine occurrences" 4
    (Ir.Phrase.count ~terms:[ "search"; "engine" ] fig5_text);
  check int_ "information retrieval occurrences" 3
    (Ir.Phrase.count ~terms:[ "information"; "retrieval" ] fig5_text)

let test_author_pool () =
  check bool_ "Doe in pool" true
    (Array.exists (String.equal "Doe") Workload.Corpus.author_surnames)


let test_reviews_match_articles () =
  let cfg = { small_cfg with articles = 5 } in
  let articles = List.of_seq (Workload.Corpus.generate cfg) in
  let reviews = List.of_seq (Workload.Corpus.generate_reviews cfg) in
  check int_ "one review per article" 5 (List.length reviews);
  (* every review title shares at least one word with its article's
     title *)
  List.iteri
    (fun i (_, review) ->
      let _, article = List.nth articles i in
      let article_title =
        Xmlkit.Tree.all_text
          (Option.get (Xmlkit.Traverse.find_first "article-title" article))
      in
      let review_title =
        Xmlkit.Tree.all_text
          (Option.get (Xmlkit.Traverse.find_first "title" review))
      in
      check bool_
        (Printf.sprintf "review %d title overlaps" i)
        true
        (Ir.Similarity.count_same article_title review_title >= 1))
    reviews

let test_reviews_shape () =
  let cfg = { small_cfg with articles = 3 } in
  let reviews = List.of_seq (Workload.Corpus.generate_reviews ~per_article:2 cfg) in
  check int_ "two per article" 6 (List.length reviews);
  let _, first = List.hd reviews in
  check bool_ "has rating" true
    (Xmlkit.Traverse.find_first "rating" first <> None);
  check bool_ "has reviewer" true
    (Xmlkit.Traverse.find_first "reviewer" first <> None);
  (* ratings are 1..5 *)
  List.iter
    (fun (_, r) ->
      let rating =
        int_of_string
          (String.trim
             (Xmlkit.Tree.all_text
                (Option.get (Xmlkit.Traverse.find_first "rating" r))))
      in
      check bool_ "rating in range" true (rating >= 1 && rating <= 5))
    reviews

let test_query_gen () =
  let spec =
    { Workload.Query_gen.default_spec with terms = [ "alpha"; "beta" ] }
  in
  let queries = Workload.Query_gen.generate ~count:25 spec in
  check int_ "count" 25 (List.length queries);
  let again = Workload.Query_gen.generate ~count:25 spec in
  check bool_ "deterministic" true (queries = again);
  check bool_ "queries differ" true
    (List.length (List.sort_uniq compare queries) > 5)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "workload"
    [
      ( "zipf",
        [ tc "bounds" `Quick test_zipf_bounds; tc "skew" `Quick test_zipf_skew ] );
      ("text_gen", [ tc "deterministic" `Quick test_text_gen_deterministic ]);
      ( "corpus",
        [
          tc "structure" `Quick test_corpus_structure;
          tc "planted term frequencies" `Quick test_corpus_planted_frequencies;
          tc "planted phrases" `Quick test_corpus_planted_phrases;
          tc "deterministic" `Quick test_corpus_deterministic;
          tc "seq reusable" `Quick test_corpus_seq_reusable;
          tc "capacity check" `Quick test_corpus_capacity_check;
        ] );
      ( "reviews",
        [
          tc "titles match articles" `Quick test_reviews_match_articles;
          tc "shape" `Quick test_reviews_shape;
        ] );
      ("query gen", [ tc "generate" `Quick test_query_gen ]);
      ( "paper db",
        [
          tc "shape" `Quick test_paper_db_shape;
          tc "author pool" `Quick test_author_pool;
        ] );
    ]
