(* Query 2 at corpus scale, entirely inside the engine: the
   structural predicate (articles authored by "Doe") is evaluated
   with stack-based structural joins over the tag index, the IR part
   with TermJoin, and the two are combined with a containment
   semi-join — no in-memory document trees.

     dune exec examples/structured_at_scale.exe
*)

let () =
  let cfg =
    {
      Workload.Corpus.default with
      articles = 500;
      seed = 99;
      planted_terms = [ ("distributed", 1200); ("consensus", 700) ];
    }
  in
  let options = { Store.Db.default_options with keep_trees = false } in
  let db = Store.Db.load ~options (Workload.Corpus.generate cfg) in
  let ctx = Access.Ctx.of_db db in
  Format.printf "corpus: %a@.@." Store.Db.pp_stats (Store.Db.stats db);

  (* the structural part of the paper's Query 2 as a pattern tree *)
  let pattern =
    let open Core.Pattern in
    make
      (pnode ~pred:(Tag "article") 1
         [
           pnode ~axis:Descendant ~pred:(Tag "author") 2
             [ pnode ~pred:(And (Tag "sname", Content_eq "Doe")) 3 [] ];
         ])
      []
  in
  let started = Unix.gettimeofday () in
  let articles = Access.Pattern_exec.matches ctx pattern ~var:1 in
  Format.printf "articles with author \"Doe\": %d of %d (%.1f ms)@."
    (List.length articles) cfg.Workload.Corpus.articles
    ((Unix.gettimeofday () -. started) *. 1000.);

  (* score components with TermJoin, restricted to those articles *)
  let started = Unix.gettimeofday () in
  let scored =
    Access.Pattern_exec.scored_matches ctx pattern ~struct_var:1
      ~terms:[ "distributed"; "consensus" ]
  in
  Format.printf "scored components inside them: %d (%.1f ms)@.@."
    (List.length scored)
    ((Unix.gettimeofday () -. started) *. 1000.);

  (* rank with the bounded top-k accumulator (Sec. 5.3) *)
  let emitter ~emit () =
    List.iter emit scored;
    List.length scored
  in
  let top = Access.Ranked.top_k 8 emitter in
  Format.printf "top components (tag, doc, score):@.";
  List.iter
    (fun (n : Access.Scored_node.t) ->
      let tag =
        Option.value ~default:"?" (Store.Db.tag_of db ~doc:n.doc ~start:n.start)
      in
      Format.printf "  %-14s doc=%-4d start=%-6d score=%.1f@." tag n.doc
        n.start n.score)
    top
