(* Phrase search: PhraseFinder versus the Comp3 composite baseline on
   a corpus with planted phrases, including the buffer-pool I/O
   statistics that explain the gap (Sec. 5.1.2 / 6.2).

     dune exec examples/phrase_search.exe
*)

let time f =
  let start = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. start)

let () =
  let cfg =
    {
      Workload.Corpus.default with
      articles = 400;
      seed = 7;
      planted_terms = [ ("neural", 3000); ("network", 2500) ];
      planted_phrases = [ ("neural", "network", 800) ];
    }
  in
  let options = { Store.Db.default_options with keep_trees = false } in
  let db = Store.Db.load ~options (Workload.Corpus.generate cfg) in
  let ctx = Access.Ctx.of_db db in
  Format.printf "corpus: %a@.@." Store.Db.pp_stats (Store.Db.stats db);

  let phrase = [ "neural"; "network" ] in
  let pager = Store.Element_store.pager (Store.Db.elements db) in

  Store.Pager.reset_stats pager;
  let pf_hits, pf_time =
    time (fun () -> Access.Phrase_finder.to_list ctx ~phrase)
  in
  let pf_stats = Store.Pager.stats pager in

  Store.Pager.clear_pool pager;
  Store.Pager.reset_stats pager;
  let c3_hits, c3_time =
    time (fun () -> Access.Composite.comp3_list ctx ~phrase)
  in
  let c3_stats = Store.Pager.stats pager in

  let total l =
    List.fold_left
      (fun acc (n : Access.Scored_node.t) -> acc + int_of_float n.score)
      0 l
  in
  Format.printf "phrase %S:@." (String.concat " " phrase);
  Format.printf
    "  PhraseFinder: %4d elements, %4d occurrences, %6.2f ms, %5d page reads@."
    (List.length pf_hits) (total pf_hits) (pf_time *. 1000.)
    pf_stats.Store.Pager.reads;
  Format.printf
    "  Comp3:        %4d elements, %4d occurrences, %6.2f ms, %5d page reads@."
    (List.length c3_hits) (total c3_hits) (c3_time *. 1000.)
    c3_stats.Store.Pager.reads;
  Format.printf
    "@.PhraseFinder verifies adjacency during the posting merge; Comp3@.\
     materializes per-term candidate sets and re-verifies each one@.\
     against the data pages — the page-read column shows the cost.@.";
  if total pf_hits <> total c3_hits then
    Format.printf "WARNING: methods disagree!@."
