(* The paper's Query 3 pattern at corpus scale, with the score-
   modifying access methods of Sec. 5.2: score article components
   with TermJoin, join articles against a generated review collection
   on title similarity (a scored value join), and combine the scores
   ScoreBar-style.

     dune exec examples/review_join_at_scale.exe
*)

let () =
  let cfg =
    {
      Workload.Corpus.default with
      articles = 300;
      seed = 5;
      planted_terms = [ ("ranking", 900); ("retrieval", 500) ];
    }
  in
  let docs =
    Seq.append
      (Workload.Corpus.generate cfg)
      (Workload.Corpus.generate_reviews cfg)
  in
  let options = { Store.Db.default_options with keep_trees = false } in
  let db = Store.Db.load ~options docs in
  let ctx = Access.Ctx.of_db db in
  Format.printf "corpus: %a@.@." Store.Db.pp_stats (Store.Db.stats db);

  (* side 1: best-scoring article components (TermJoin + top-k) *)
  let article_hits =
    Access.Ranked.top_k 40 (fun ~emit () ->
        Access.Term_join.run ctx
          ~terms:[ "ranking"; "retrieval" ]
          ~weights:[| 0.8; 0.6 |] ~emit ())
  in
  (* keep the article roots among them (level 0 of article docs) *)
  let top_articles =
    List.filter (fun (n : Access.Scored_node.t) -> n.level = 0) article_hits
  in
  Format.printf "top-scored articles: %d@." (List.length top_articles);

  (* side 2: their article-title elements, and all review titles *)
  let titles_of tag =
    match Store.Catalog.tag_id (Store.Db.catalog db) tag with
    | None -> []
    | Some id ->
      Array.to_list (Store.Tag_index.nodes (Store.Db.tags db) ~tag:id)
      |> List.map (fun (i : Store.Tag_index.item) ->
             {
               Access.Scored_node.doc = i.doc;
               start = i.start;
               end_ = i.end_;
               level = i.level;
               tag = id;
               score = 0.;
             })
  in
  let top_docs =
    List.map (fun (n : Access.Scored_node.t) -> n.doc) top_articles
  in
  let article_titles =
    List.filter
      (fun (n : Access.Scored_node.t) -> List.mem n.doc top_docs)
      (titles_of "article-title")
  in
  (* carry each article's score on its title node so the value join
     can combine scores *)
  let article_titles =
    List.map
      (fun (t : Access.Scored_node.t) ->
        let score =
          match
            List.find_opt
              (fun (a : Access.Scored_node.t) -> a.doc = t.doc)
              top_articles
          with
          | Some a -> a.score
          | None -> 0.
        in
        { t with score })
      article_titles
  in
  let review_titles = titles_of "title" in
  Format.printf "candidate titles: %d articles x %d reviews@."
    (List.length article_titles)
    (List.length review_titles);

  (* scored value join (Example 5.1): title similarity as the join
     condition, weighted-sum score combination *)
  let joined =
    Access.Score_merge.value_join
      ~condition:(Access.Score_merge.similarity_condition ctx ~min_sim:2.)
      article_titles review_titles
  in
  let ranked =
    List.sort (fun (_, _, a) (_, _, b) -> compare b a) joined
  in
  Format.printf "@.top joined (article doc, review doc, combined score):@.";
  List.iteri
    (fun i ((a : Access.Scored_node.t), (r : Access.Scored_node.t), s) ->
      if i < 8 then
        Format.printf "  %-28s + %-24s -> %.1f@."
          (Store.Catalog.document_name (Store.Db.catalog db) a.doc)
          (Store.Catalog.document_name (Store.Db.catalog db) r.doc)
          s)
    ranked;
  Format.printf "(%d joined pairs)@." (List.length ranked)
