(* Heterogeneous collections: the motivation of the paper's Sec. 1.
   Four documents with four different schemas (article, book, faq,
   conference paper) are searched with ONE schema-free query: the
   descendant-or-self axis plus relevance scoring finds the right
   elements in each, at the right granularity, while a boolean path
   query tied to one schema sees only one document.

     dune exec examples/heterogeneous.exe
*)

let () =
  let db = Store.Db.of_documents Workload.Library_db.documents in
  let evaluator = Query.Eval.create db in
  Format.printf "library: %a@.@." Store.Db.pp_stats (Store.Db.stats db);

  (* schema-bound boolean query: only the article answers *)
  Format.printf "=== Path query tied to the article schema ===@.";
  (match
     Query.Eval.run_string evaluator
       {|
       for $p in document("*")//chapter/section/p
       where count({"inverted index"}, $p) > 0
       return <hit>{$p}</hit>
       |}
   with
  | Ok results ->
    Format.printf
      "%d hits - the book, faq and paper use different element names@.@."
      (List.length results)
  | Error msg -> Format.printf "error: %s@." msg);

  (* schema-free scored query over everything *)
  Format.printf "=== Schema-free scored query over all four schemas ===@.";
  match
    Query.Eval.run_string evaluator
      {|
      for $e in document("*")//descendant-or-self::*
      score $e using ScoreFoo($e, {"inverted index"}, {"ranking", "score"})
      pick $e using PickFoo(0.8)
      return <hit><score>{$e/@score}</score>{$e}</hit>
      sortby(score)
      threshold $e/@score > 0 stop after 8
      |}
  with
  | Error msg -> Format.printf "error: %s@." msg
  | Ok results ->
    List.iteri
      (fun i hit ->
        let score =
          match Xmlkit.Traverse.find_first "score" hit with
          | Some s -> String.trim (Xmlkit.Tree.all_text s)
          | None -> "?"
        in
        let payload =
          List.find_map
            (fun n ->
              match n with
              | Xmlkit.Tree.Element e when e.Xmlkit.Tree.tag <> "score" ->
                Some e
              | Xmlkit.Tree.Element _ | Xmlkit.Tree.Text _
              | Xmlkit.Tree.Comment _ | Xmlkit.Tree.Pi _ ->
                None)
            hit.Xmlkit.Tree.children
        in
        match payload with
        | Some e ->
          let text = Xmlkit.Tree.all_text e in
          Format.printf "%d. [%s] <%s> %s@." (i + 1) score e.Xmlkit.Tree.tag
            (if String.length text > 56 then String.sub text 0 56 ^ "..."
             else text)
        | None -> ())
      results;
    Format.printf
      "@.One query; answers drawn from <p>, <para>, <answer> and <body>@.\
       elements across four unrelated schemas, ranked together, with@.\
       parent/child redundancy removed by Pick.@."
