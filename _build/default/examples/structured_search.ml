(* Structured IR-style search: the paper's Query 2 evaluated step by
   step with the TIX algebra, reproducing the worked example of
   Sec. 3 (Figures 5, 6 and 8) and Example 3.1.

     dune exec examples/structured_search.exe
*)

let score_foo =
  Core.Scorers.score_foo
    ~primary:[ "search engine" ]
    ~secondary:[ "internet"; "information retrieval" ]
    ()

(* The scored pattern tree of Fig. 3: $1 = article authored by "Doe",
   $4 = any self-or-descendant, scored with ScoreFoo; $1 inherits the
   best $4 score (secondary IR-node). *)
let pattern =
  let open Core.Pattern in
  make
    (pnode ~pred:(Tag "article") 1
       [
         pnode ~axis:Descendant ~pred:(Tag "author") 2
           [ pnode ~pred:(And (Tag "sname", Content_eq "Doe")) 3 [] ];
         pnode ~axis:Self_or_descendant 4 [];
       ])
    [
      { target = 4; expr = Node_score score_foo };
      { target = 1; expr = Best_of 4 };
    ]

let print_collection title collection =
  Format.printf "=== %s (%d trees) ===@." title (List.length collection);
  List.iter (fun t -> Format.printf "%a@.@." Core.Stree.pp t) collection

let () =
  let num = Xmlkit.Numbering.number Workload.Paper_db.articles in
  let tree = Core.Stree.of_numbered num ~doc:0 in

  (* Scored selection (Sec. 3.2.1): one witness tree per embedding,
     as in Fig. 5. Print the three representative ones. *)
  let witnesses = Core.Op_select.select pattern [ tree ] in
  let representative =
    List.filter
      (fun (t : Core.Stree.t) ->
        match t.score with
        | Some s -> abs_float (s -. 0.8) < 1e-9 || abs_float (s -. 3.6) < 1e-9
        | None -> false)
      witnesses
  in
  print_collection "Selection witnesses (Fig. 5, scores 0.8 and 3.6)"
    representative;

  (* Scored projection (Sec. 3.2.2) with PL = {$1, $3, $4}: Fig. 6 *)
  let projected = Core.Op_project.project pattern ~pl:[ 1; 3; 4 ] [ tree ] in
  print_collection "Projection with PL = {$1,$3,$4} (Fig. 6)" projected;

  (* Pick (Sec. 3.3.2) with the PickFoo criterion: Fig. 8 *)
  let crit = Core.Op_pick.pick_foo () in
  let picked = Core.Op_pick.apply pattern ~var:4 crit projected in
  print_collection "After Pick with PickFoo (Fig. 8)" picked;

  (* Example 3.1: rank the surviving IR nodes; the paper's expected
     top answer is the chapter #a10 *)
  (match picked with
  | [ result ] ->
    let scored =
      List.filter
        (fun (n : Core.Stree.t) -> n.score <> None && not (n == result))
        (Core.Stree.self_or_descendants result)
    in
    let ranked =
      List.stable_sort
        (fun (a : Core.Stree.t) b ->
          compare (Core.Stree.score b) (Core.Stree.score a))
        scored
    in
    Format.printf "=== Ranked picks (Example 3.1) ===@.";
    List.iteri
      (fun i (n : Core.Stree.t) ->
        Format.printf "%d. <%s>%a score %.1f@." (i + 1) n.tag
          Core.Stree.pp_id n.id (Core.Stree.score n))
      ranked
  | _ -> Format.printf "unexpected result shape@.");

  (* The same query through the algebra plan combinators, with
     explain output *)
  let plan =
    Core.Algebra.(
      Pick
        {
          pattern;
          var = 4;
          criterion = crit;
          input =
            Project
              { pattern; pl = [ 1; 3; 4 ]; drop_zero = true; input = Scan [ tree ] };
        })
  in
  Format.printf "@.=== Plan ===@.%s@." (Core.Algebra.explain plan)
