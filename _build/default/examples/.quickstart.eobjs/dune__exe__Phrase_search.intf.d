examples/phrase_search.mli:
