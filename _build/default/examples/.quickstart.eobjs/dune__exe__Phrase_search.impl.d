examples/phrase_search.ml: Access Format List Store String Unix Workload
