examples/granularity.mli:
