examples/review_join_at_scale.ml: Access Array Format List Seq Store Workload
