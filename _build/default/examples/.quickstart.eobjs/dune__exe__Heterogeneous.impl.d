examples/heterogeneous.ml: Format List Query Store String Workload Xmlkit
