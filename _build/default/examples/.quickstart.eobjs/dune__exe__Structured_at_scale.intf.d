examples/structured_at_scale.mli:
