examples/quickstart.mli:
