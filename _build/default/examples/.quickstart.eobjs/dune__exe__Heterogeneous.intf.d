examples/heterogeneous.mli:
