examples/granularity.ml: Access Core Format Hashtbl List Option Store Workload
