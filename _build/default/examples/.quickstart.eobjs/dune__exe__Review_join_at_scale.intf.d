examples/review_join_at_scale.mli:
