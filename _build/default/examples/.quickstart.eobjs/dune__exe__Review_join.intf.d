examples/review_join.mli:
