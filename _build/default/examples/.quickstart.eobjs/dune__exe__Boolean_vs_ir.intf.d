examples/boolean_vs_ir.mli:
