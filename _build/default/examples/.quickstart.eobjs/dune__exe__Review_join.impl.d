examples/review_join.ml: Format List Option Query Store String Workload Xmlkit
