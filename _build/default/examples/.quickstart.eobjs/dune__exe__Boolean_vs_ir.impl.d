examples/boolean_vs_ir.ml: Format List Query Store String Workload Xmlkit
