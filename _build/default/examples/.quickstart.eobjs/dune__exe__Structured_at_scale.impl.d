examples/structured_at_scale.ml: Access Core Format List Option Store Unix Workload
