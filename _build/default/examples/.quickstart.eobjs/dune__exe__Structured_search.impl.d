examples/structured_search.ml: Core Format List Workload Xmlkit
