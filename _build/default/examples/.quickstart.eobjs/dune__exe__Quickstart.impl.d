examples/quickstart.ml: Format List Query Store String Workload Xmlkit
