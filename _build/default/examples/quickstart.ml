(* Quickstart: load the paper's example database (Fig. 1), run the
   paper's Query 1 through the extended-XQuery front end, and print
   the ranked result elements.

     dune exec examples/quickstart.exe
*)

let query1 =
  {|
  for $a in document("articles.xml")//article/descendant-or-self::*
  score $a using ScoreFoo($a, {"search engine"},
                          {"internet", "information retrieval"})
  return <result><score>{$a/@score}</score>{$a}</result>
  sortby(score)
  threshold $a/@score > 0 stop after 5
  |}

let () =
  (* 1. load documents into the database: element store, parent
     index and positional inverted index are built in one pass *)
  let db = Store.Db.of_documents Workload.Paper_db.documents in
  Format.printf "loaded: %a@.@." Store.Db.pp_stats (Store.Db.stats db);

  (* 2. evaluate an IR-style query *)
  let evaluator = Query.Eval.create db in
  match Query.Eval.run_string evaluator query1 with
  | Error msg -> Format.printf "query failed: %s@." msg
  | Ok results ->
    Format.printf
      "Query 1: components about \"search engine\" (top %d):@.@."
      (List.length results);
    List.iteri
      (fun rank result ->
        let score =
          match Xmlkit.Traverse.find_first "score" result with
          | Some s -> String.trim (Xmlkit.Tree.all_text s)
          | None -> "?"
        in
        let payload =
          List.find_map
            (fun n ->
              match n with
              | Xmlkit.Tree.Element e when e.Xmlkit.Tree.tag <> "score" ->
                Some e
              | Xmlkit.Tree.Element _ | Xmlkit.Tree.Text _
              | Xmlkit.Tree.Comment _ | Xmlkit.Tree.Pi _ ->
                None)
            result.Xmlkit.Tree.children
        in
        match payload with
        | Some e ->
          Format.printf "%d. [%s] <%s>  %s@." (rank + 1) score
            e.Xmlkit.Tree.tag
            (let text = Xmlkit.Tree.all_text e in
             if String.length text > 60 then String.sub text 0 60 ^ "..."
             else text)
        | None -> Format.printf "%d. [%s] (empty)@." (rank + 1) score)
      results
