(* Result granularity at scale: generate a synthetic INEX-like corpus
   with planted query terms, score every element with the TermJoin
   access method, derive a relevance threshold from the score
   histogram (Sec. 5.3), and let the stack-based Pick choose the
   right level of granularity — whole articles where everything is
   relevant, single paragraphs where relevance is local.

     dune exec examples/granularity.exe
*)

let () =
  let cfg =
    {
      Workload.Corpus.default with
      articles = 120;
      seed = 2026;
      planted_terms = [ ("quantum", 160); ("entanglement", 90) ];
      planted_phrases = [ ("quantum", "entanglement", 30) ];
    }
  in
  let options = { Store.Db.default_options with keep_trees = true } in
  let db = Store.Db.load ~options (Workload.Corpus.generate cfg) in
  Format.printf "corpus: %a@.@." Store.Db.pp_stats (Store.Db.stats db);

  let ctx = Access.Ctx.of_db db in
  let terms = [ "quantum"; "entanglement" ] in

  (* score generation via TermJoin *)
  let scored = Access.Term_join.to_list ctx ~terms ~weights:[| 0.8; 0.6 |] in
  Format.printf "TermJoin scored %d elements@." (List.length scored);

  (* histogram-driven threshold (Sec. 5.3): the user asks for "the
     top decile" instead of an absolute score *)
  let scores = List.map (fun (n : Access.Scored_node.t) -> n.score) scored in
  let histogram = Store.Histogram.of_values ~buckets:64 scores in
  let threshold = Store.Histogram.quantile histogram 0.90 in
  Format.printf "90th-percentile score threshold: %.2f@.@." threshold;

  (* build scored trees per document and pick *)
  let by_doc = Hashtbl.create 64 in
  List.iter
    (fun (n : Access.Scored_node.t) ->
      let l = Option.value ~default:[] (Hashtbl.find_opt by_doc n.doc) in
      Hashtbl.replace by_doc n.doc (n :: l))
    scored;
  let crit = Core.Op_pick.pick_foo ~threshold ~fraction:0.5 () in
  let picked_counts = Hashtbl.create 8 in
  let picked_total = ref 0 in
  Hashtbl.iter
    (fun doc nodes ->
      match Store.Db.numbering db ~doc with
      | None -> ()
      | Some num ->
        let tree = Core.Stree.of_numbered num ~doc in
        (* annotate the document tree with TermJoin scores *)
        let score_map = Hashtbl.create 64 in
        List.iter
          (fun (n : Access.Scored_node.t) ->
            if n.score >= threshold then
              Hashtbl.replace score_map n.start n.score)
          nodes;
        let rec annotate (n : Core.Stree.t) : Core.Stree.t =
          let score =
            match n.id with
            | Core.Stree.Stored { start; _ } -> Hashtbl.find_opt score_map start
            | Core.Stree.Synthetic _ -> None
          in
          let children =
            List.map
              (function
                | Core.Stree.Node c -> Core.Stree.Node (annotate c)
                | Core.Stree.Content s -> Core.Stree.Content s)
              n.children
          in
          { n with score; children }
        in
        let annotated = annotate tree in
        let returned =
          Access.Pick_stack.returned crit
            ~candidates:(fun n -> n.Core.Stree.score <> None)
            annotated
        in
        List.iter
          (fun (n : Core.Stree.t) ->
            picked_total := !picked_total + 1;
            let c =
              Option.value ~default:0 (Hashtbl.find_opt picked_counts n.tag)
            in
            Hashtbl.replace picked_counts n.tag (c + 1))
          returned)
    by_doc;

  Format.printf
    "Pick returned %d elements at mixed granularity (redundancy removed):@."
    !picked_total;
  Hashtbl.iter
    (fun tag count -> Format.printf "  %-14s %d@." tag count)
    picked_counts;
  Format.printf
    "@.(ancestors of picked nodes are suppressed: an element and its@.\
     parent are never both returned)@."
