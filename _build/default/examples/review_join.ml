(* IR-style join: the paper's Query 3. Find relevant components of
   articles written by Doe, then join articles with reviews whose
   titles are similar (ScoreSim), combining scores with ScoreBar
   (Figures 4 and 7).

     dune exec examples/review_join.exe
*)

let query3 =
  {|
  for $a in document("articles.xml")//article[author/sname = "Doe"]
  for $b in document("review-*.xml")//review
  let $sim := ScoreSim($a/article-title/text(), $b/title/text())
  where $sim > 1
  for $d in $a/descendant-or-self::*
  score $d using ScoreFoo($d, {"search engine"},
                          {"internet", "information retrieval"})
  pick $d using PickFoo()
  let $total := ScoreBar(decimal($sim), $d/@score)
  return <hit><score>{$total}</score><sim>{$sim}</sim>{$d}{$b}</hit>
  sortby(score)
  threshold $d/@score > 0 stop after 5
  |}

let () =
  let db = Store.Db.of_documents Workload.Paper_db.documents in
  let evaluator = Query.Eval.create db in
  match Query.Eval.run_string evaluator query3 with
  | Error msg -> Format.printf "query failed: %s@." msg
  | Ok results ->
    Format.printf "Query 3: %d joined results@.@." (List.length results);
    List.iteri
      (fun rank hit ->
        let field tag =
          match Xmlkit.Traverse.find_first tag hit with
          | Some e -> String.trim (Xmlkit.Tree.all_text e)
          | None -> "?"
        in
        let component =
          List.find_map
            (fun n ->
              match n with
              | Xmlkit.Tree.Element e
                when e.Xmlkit.Tree.tag <> "score" && e.Xmlkit.Tree.tag <> "sim"
                     && e.Xmlkit.Tree.tag <> "review" ->
                Some e.Xmlkit.Tree.tag
              | Xmlkit.Tree.Element _ | Xmlkit.Tree.Text _
              | Xmlkit.Tree.Comment _ | Xmlkit.Tree.Pi _ ->
                None)
            hit.Xmlkit.Tree.children
        in
        let review_id =
          match Xmlkit.Traverse.find_first "review" hit with
          | Some r -> Option.value ~default:"?" (Xmlkit.Tree.attr r "id")
          | None -> "?"
        in
        Format.printf
          "%d. combined score %s (title similarity %s): <%s> with review #%s@."
          (rank + 1) (field "score") (field "sim")
          (Option.value ~default:"?" component)
          review_id)
      results;
    (* also print the best joined tree in full, like Fig. 7 *)
    match results with
    | best :: _ ->
      Format.printf "@.Best joined result (cf. Fig. 7):@.%s@."
        (Xmlkit.Printer.to_string ~indent:2 best)
    | [] -> ()
