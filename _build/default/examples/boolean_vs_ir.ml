(* The paper's motivating example (Sec. 2): why boolean retrieval
   fails on structured text, and what the TIX extensions do instead.

   Query 1 asks for document components about "search engine",
   preferring ones also mentioning "internet" and "information
   retrieval". We run three formulations at paragraph granularity
   over the Figure 1 database:

   - boolean AND: loses the relevant paragraph #a18 (it never
     mentions the secondary terms);
   - boolean OR: floods the user with components relevant only to the
     secondary terms;
   - scored (ScoreFoo + ranking): finds the right components in the
     right order.

     dune exec examples/boolean_vs_ir.exe
*)

let header title = Format.printf "@.=== %s ===@." title

let show results =
  if results = [] then Format.printf "(no results)@.";
  List.iteri
    (fun i (r : Xmlkit.Tree.element) ->
      let text = Xmlkit.Tree.all_text r in
      let text =
        if String.length text > 70 then String.sub text 0 70 ^ "..." else text
      in
      Format.printf "%d. %s@." (i + 1) text)
    results

let run evaluator q =
  match Query.Eval.run_string evaluator q with
  | Ok results -> show results
  | Error msg -> Format.printf "error: %s@." msg

let () =
  let db = Store.Db.of_documents Workload.Paper_db.documents in
  let evaluator = Query.Eval.create db in

  header "Boolean AND over paragraphs: primary AND both secondary terms";
  run evaluator
    {|
    for $p in document("articles.xml")//p
    where count({"search engine"}, $p) > 0
      and count({"internet"}, $p) > 0
      and count({"information retrieval"}, $p) > 0
    return <hit>{$p}</hit>
    |};
  Format.printf
    "-> empty: the AND formulation loses even the obviously relevant@.\
    \   paragraph #a18 (\"Here are some IR based search engines\").@.";

  header "Boolean OR over all components";
  run evaluator
    {|
    for $p in document("articles.xml")//article/descendant-or-self::*
    where count({"search engine"}, $p) > 0
      or count({"internet"}, $p) > 0
      or count({"information retrieval"}, $p) > 0
    return <hit>{$p}</hit>
    |};
  Format.printf
    "-> floods: every containing ancestor and components relevant only@.\
    \   to the secondary terms (like the section-title #a15) qualify,@.\
    \   with no ordering to distinguish the good answers.@.";

  header "Scored retrieval with ranking (TIX)";
  run evaluator
    {|
    for $p in document("articles.xml")//p
    score $p using ScoreFoo($p, {"search engine"},
                            {"internet", "information retrieval"})
    return <hit><score>{$p/@score}</score>{$p}</hit>
    sortby(score)
    threshold $p/@score > 0
    |};
  Format.printf
    "-> the paragraphs mentioning the primary phrase rank first,@.\
    \   weighted by the secondary terms; nothing relevant is lost.@."
