type t = Stree.t list

let of_elements els = List.map (fun e -> Stree.of_element e) els
let singleton t = [ t ]
let size = List.length

let sort_by_score trees =
  List.stable_sort
    (fun a b -> compare (Stree.score b) (Stree.score a))
    trees

let best trees =
  match sort_by_score trees with [] -> None | t :: _ -> Some t

let scores trees = List.map Stree.score trees

let pp ppf trees =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i t -> Format.fprintf ppf "%d: %a@," i Stree.pp t)
    trees;
  Format.fprintf ppf "@]"
