(** Collections of scored trees: the carrier of the TIX algebra. *)

type t = Stree.t list

val of_elements : Xmlkit.Tree.element list -> t
val singleton : Stree.t -> t
val size : t -> int

val sort_by_score : t -> t
(** Highest score first; stable. *)

val best : t -> Stree.t option
(** Highest-scoring tree. *)

val scores : t -> float list
(** Root scores in collection order (null scores as 0). *)

val pp : Format.formatter -> t -> unit
