let prod_root_tag = "tix_prod_root"

let product c1 c2 =
  List.concat_map
    (fun a ->
      List.map
        (fun b -> Stree.make prod_root_tag [ Stree.Node a; Stree.Node b ])
        c2)
    c1

let join pat c1 c2 = Op_select.select pat (product c1 c2)
