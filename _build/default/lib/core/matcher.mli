(** Pattern-tree matching against scored data trees.

    An embedding maps every pattern variable to a data node such that
    the axes and predicates hold. The pattern root may bind to the
    data tree's root or to any of its descendants. *)

type binding = (int * Stree.t) list
(** Variable to data-node assignment, in pattern preorder. *)

val embeddings : Pattern.t -> Stree.t -> binding list
(** All embeddings, in document order of the root match. *)

val matches_of_var : Pattern.t -> int -> Stree.t -> Stree.t list
(** Distinct data nodes (by id) that the variable binds to in some
    embedding; computed by semi-join pruning without enumerating
    embeddings. *)

val lookup : binding -> int -> Stree.t option
