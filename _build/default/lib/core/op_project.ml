let id_key (n : Stree.t) =
  match n.id with
  | Stree.Stored { doc; start } -> (doc, start, 0)
  | Stree.Synthetic k -> (-1, k, 1)

(* Is [d] the node [a] itself or one of its descendants? Matches come
   from the same tree, so physical identity is reliable. *)
let in_subtree (a : Stree.t) (d : Stree.t) =
  List.exists (fun n -> n == d) (Stree.self_or_descendants a)

let project ?(drop_zero = true) (pat : Pattern.t) ~pl trees =
  let project_tree tree =
    let matches_of var = Matcher.matches_of_var pat var tree in
    let scores : (int * int * int, float) Hashtbl.t = Hashtbl.create 64 in
    let kept : (int * int * int, unit) Hashtbl.t = Hashtbl.create 64 in
    let assign node s =
      let key = id_key node in
      match Hashtbl.find_opt scores key with
      | Some prev when prev >= s -> ()
      | Some _ | None -> Hashtbl.replace scores key s
    in
    (* First pass: primary scores. *)
    let primary_scored = ref [] in
    List.iter
      (fun var ->
        match Pattern.rule_for pat var with
        | Some { expr = Pattern.Node_score scorer; _ } ->
          List.iter
            (fun node ->
              let s = scorer.eval node in
              (* a zero-score match is removed as an IR-node: it gets
                 neither kept nor scored (it may still be retained as
                 the match of another variable, unscored, like the
                 sname in Fig. 6) *)
              if (not drop_zero) || s > 0. then begin
                assign node s;
                Hashtbl.replace kept (id_key node) ();
                primary_scored := (var, node, s) :: !primary_scored
              end)
            (matches_of var)
        | Some _ | None ->
          List.iter
            (fun node -> Hashtbl.replace kept (id_key node) ())
            (matches_of var))
      pl;
    let any_match = Hashtbl.length kept > 0 in
    (* Second pass: secondary scores; the best score achievable from
       the retained primary matches inside the secondary node's
       subtree. *)
    let rec eval_secondary node (expr : Pattern.score_expr) =
      match expr with
      | Pattern.Best_of v ->
        List.fold_left
          (fun acc (var, m, s) ->
            if var = v && in_subtree node m then max acc s else acc)
          0. !primary_scored
      | Pattern.Const c -> c
      | Pattern.Combine { inputs; eval; _ } ->
        eval (List.map (eval_secondary node) inputs)
      | Pattern.Node_score scorer -> scorer.eval node
      | Pattern.Similarity _ -> 0.
    in
    List.iter
      (fun (rule : Pattern.rule) ->
        match rule.expr with
        | Pattern.Node_score _ -> ()
        | expr ->
          List.iter
            (fun node ->
              if Hashtbl.mem kept (id_key node) || List.mem rule.target pl
              then begin
                let s = eval_secondary node expr in
                assign node s;
                if List.mem rule.target pl then
                  Hashtbl.replace kept (id_key node) ()
              end)
            (matches_of rule.target))
      pat.rules;
    if not any_match then []
    else begin
      let rec rebuild (n : Stree.t) : Stree.child list =
        let is_kept = Hashtbl.mem kept (id_key n) in
        let children =
          List.concat_map
            (fun c ->
              match c with
              | Stree.Content s ->
                if is_kept then [ Stree.Content s ] else []
              | Stree.Node m -> rebuild m)
            n.children
        in
        if is_kept then
          [ Stree.Node { n with score = Hashtbl.find_opt scores (id_key n); children } ]
        else children
      in
      List.filter_map
        (fun c ->
          match c with Stree.Node n -> Some n | Stree.Content _ -> None)
        (rebuild tree)
    end
  in
  List.concat_map project_tree trees

let rescore_secondary (pat : Pattern.t) ~pl:_ tree =
  let pred_of var =
    match Pattern.find_var pat var with
    | Some p -> p.pred
    | None -> Pattern.Not Pattern.True
  in
  let rec rescore (rule : Pattern.rule) (n : Stree.t) : Stree.t =
    let children =
      List.map
        (fun c ->
          match c with
          | Stree.Node m -> Stree.Node (rescore rule m)
          | Stree.Content _ -> c)
        n.children
    in
    let n = { n with children } in
    match rule.expr with
    | Pattern.Best_of v when Pattern.holds (pred_of rule.target) n ->
      let best =
        List.fold_left
          (fun acc (d : Stree.t) ->
            match d.score with
            | Some s when Pattern.holds (pred_of v) d -> max acc s
            | Some _ | None -> acc)
          0.
          (Stree.self_or_descendants n)
      in
      { n with score = Some best }
    | Pattern.Best_of _ | Pattern.Node_score _ | Pattern.Similarity _
    | Pattern.Combine _ | Pattern.Const _ ->
      n
  in
  List.fold_left (fun tree rule -> rescore rule tree) tree pat.rules
