type binding = (int * Stree.t) list

let axis_candidates axis (node : Stree.t) =
  match axis with
  | Pattern.Child -> Stree.child_nodes node
  | Pattern.Descendant ->
    List.concat_map Stree.self_or_descendants (Stree.child_nodes node)
  | Pattern.Self_or_descendant -> Stree.self_or_descendants node

(* All embeddings of pattern node [p] rooted at data node [n]
   (which is already known to be a candidate for [p]). *)
let rec embed_at (p : Pattern.pnode) (n : Stree.t) : binding list =
  if not (Pattern.holds p.pred n) then []
  else begin
    let per_child =
      List.map
        (fun (c : Pattern.pnode) ->
          List.concat_map (embed_at c) (axis_candidates c.axis n))
        p.children
    in
    if List.exists (fun l -> l = []) per_child then []
    else begin
      let combine acc child_bindings =
        List.concat_map
          (fun prefix -> List.map (fun b -> prefix @ b) child_bindings)
          acc
      in
      let tails = List.fold_left combine [ [] ] per_child in
      List.map (fun tail -> (p.var, n) :: tail) tails
    end
  end

let embeddings (pat : Pattern.t) (tree : Stree.t) =
  List.concat_map (embed_at pat.root) (Stree.self_or_descendants tree)

(* Semi-join filtering: [n] supports [p] when the predicate holds and
   every pattern child has a supporting candidate below [n]. *)
let rec supports (p : Pattern.pnode) (n : Stree.t) =
  Pattern.holds p.pred n
  && List.for_all
       (fun (c : Pattern.pnode) ->
         List.exists (supports c) (axis_candidates c.axis n))
       p.children

let matches_of_var (pat : Pattern.t) var (tree : Stree.t) =
  (* Nodes bound to [var] in some embedding: walk every way the
     pattern path from the root to [var] can be placed, with
     semi-join support checks for the off-path subtrees. *)
  let rec path_to (p : Pattern.pnode) =
    if p.var = var then Some [ p ]
    else
      List.find_map
        (fun c -> Option.map (fun rest -> p :: rest) (path_to c))
        p.children
  in
  match path_to pat.root with
  | None -> []
  | Some path ->
    let rec walk (path : Pattern.pnode list) candidates =
      match path with
      | [] -> []
      | [ last ] -> List.filter (supports last) candidates
      | p :: (next :: _ as rest) ->
        let here = List.filter (supports p) candidates in
        let below =
          List.concat_map (axis_candidates next.Pattern.axis) here
        in
        walk rest below
    in
    let initial = Stree.self_or_descendants tree in
    let found = walk path initial in
    (* dedup by id, preserving document order *)
    let seen = Hashtbl.create 16 in
    List.filter
      (fun (n : Stree.t) ->
        let key =
          match n.id with
          | Stree.Stored { doc; start } -> (doc, start, 0)
          | Stree.Synthetic k -> (-1, k, 1)
        in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.replace seen key ();
          true
        end)
      found

let lookup (b : binding) var = List.assoc_opt var b
