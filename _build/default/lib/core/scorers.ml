let score_foo ?(primary_weight = 0.8) ?(secondary_weight = 0.6) ~primary
    ~secondary () =
  let parse = List.map (fun p -> Ir.Phrase.parse p) in
  let primary = parse primary and secondary = parse secondary in
  let eval node =
    let text = Stree.all_text node in
    let count terms = float_of_int (Ir.Phrase.count ~terms text) in
    let sum weight phrases =
      List.fold_left (fun acc terms -> acc +. (weight *. count terms)) 0. phrases
    in
    sum primary_weight primary +. sum secondary_weight secondary
  in
  { Pattern.scorer_name = "ScoreFoo"; eval }

let tfidf ~doc_count ~doc_freq ~terms () =
  let eval node =
    let text = Stree.all_text node in
    let element_size = Ir.Tokenizer.count text in
    List.fold_left
      (fun acc term ->
        let count = Ir.Phrase.count ~terms:[ term ] text in
        acc
        +. Ir.Tfidf.normalized_weight ~doc_count ~doc_freq:(doc_freq term)
             ~count ~element_size)
      0. terms
  in
  { Pattern.scorer_name = "tfidf"; eval }

let bm25 ~doc_count ~doc_freq ~avg_size ~terms () =
  let eval node =
    let text = Stree.all_text node in
    let element_size = Ir.Tokenizer.count text in
    List.fold_left
      (fun acc term ->
        let count = Ir.Phrase.count ~terms:[ term ] text in
        acc
        +. Ir.Bm25.score ~doc_count ~doc_freq:(doc_freq term) ~count
             ~element_size ~avg_size ())
      0. terms
  in
  { Pattern.scorer_name = "bm25"; eval }

let score_sim a b = float_of_int (Ir.Similarity.count_same a b)
let cosine_sim = Ir.Similarity.cosine

let score_bar inputs =
  match inputs with
  | [ join_score; score ] -> if score > 0. then join_score +. score else 0.
  | _ -> invalid_arg "score_bar: expects [joinScore; score]"
