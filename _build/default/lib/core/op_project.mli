(** Scored projection (Sec. 3.2.2).

    One output tree per input tree: nodes that match no projection-
    list variable are elided (their children are promoted), matched
    nodes keep their relative hierarchy. Data nodes matching primary
    IR variables are scored with the variable's scoring function;
    nodes matching secondary variables get the best score achievable
    among the retained matches of the variable their rule refers to. *)

val project :
  ?drop_zero:bool -> Pattern.t -> pl:int list -> Stree.t list -> Stree.t list
(** [drop_zero] (default true) removes primary-match nodes whose
    score is 0, as in the paper's Fig. 6. Input trees in which the
    pattern does not embed produce no output. *)

val rescore_secondary : Pattern.t -> pl:int list -> Stree.t -> Stree.t
(** Recompute secondary (Best_of) scores from the scores currently in
    the tree — used after a Pick prunes some matches, which changes
    the best achievable score dynamically (Sec. 3.2.2/3.3.2). *)
