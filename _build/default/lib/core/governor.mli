(** Per-query resource governor.

    A query executes under a {!t} created from its {!limits}: every
    unit of work — an evaluated expression, a decoded tuple, an
    emitted node — calls {!tick}, and materialized intermediate
    results are gated by {!check_results}. The first limit breached
    raises {!Resource_exhausted}, which unwinds the query cleanly;
    the database itself holds no governor state, so the next query
    starts fresh.

    The wall clock is sampled every 128 steps, keeping the common
    case a counter increment. *)

type limits = {
  max_steps : int option;  (** budget of work units *)
  timeout_s : float option;  (** wall-clock budget in seconds *)
  max_results : int option;  (** cap on materialized tuples/results *)
}

val unlimited : limits
(** No bounds — every field [None]. *)

val limits :
  ?max_steps:int -> ?timeout_s:float -> ?max_results:int -> unit -> limits

type reason = Steps | Timeout | Results

type violation = {
  reason : reason;
  steps : int;  (** steps executed when the limit was hit *)
  elapsed_s : float;
  limit : string;  (** the breached limit, printed *)
}

exception Resource_exhausted of violation

val pp_violation : Format.formatter -> violation -> unit
val violation_to_string : violation -> string

type t

val start : limits -> t
(** Begin a governed execution; the deadline clock starts now. *)

val tick : t -> unit
(** Account one unit of work. Raises {!Resource_exhausted}. *)

val tick_n : t -> int -> unit
(** Account [n] units at once (bulk operators). *)

val check_results : t -> int -> unit
(** Fail if a materialized result set of [n] rows exceeds the cap. *)

val check_deadline : t -> unit
(** Sample the clock now, regardless of the 128-step cadence. *)

val steps : t -> int
(** Work accounted so far. *)
