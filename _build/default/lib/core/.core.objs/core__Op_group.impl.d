lib/core/op_group.ml: Hashtbl List Stree
