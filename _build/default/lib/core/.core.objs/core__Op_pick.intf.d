lib/core/op_pick.mli: Pattern Stree
