lib/core/governor.mli: Format
