lib/core/op_project.ml: Hashtbl List Matcher Pattern Stree
