lib/core/pattern.ml: Format Ir List Stree String
