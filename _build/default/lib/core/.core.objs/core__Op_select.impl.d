lib/core/op_select.ml: List Matcher Option Pattern Stree
