lib/core/op_threshold.ml: List Matcher Pattern Stree
