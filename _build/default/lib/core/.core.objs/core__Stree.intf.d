lib/core/stree.mli: Format Xmlkit
