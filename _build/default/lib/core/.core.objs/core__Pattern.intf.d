lib/core/pattern.mli: Format Stree
