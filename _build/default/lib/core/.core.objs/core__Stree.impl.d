lib/core/stree.ml: Array Buffer Format List Option Printf Xmlkit
