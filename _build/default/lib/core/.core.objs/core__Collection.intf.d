lib/core/collection.mli: Format Stree Xmlkit
