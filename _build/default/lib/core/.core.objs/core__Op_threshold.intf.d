lib/core/op_threshold.mli: Pattern Stree
