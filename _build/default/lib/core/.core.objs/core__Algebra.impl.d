lib/core/algebra.ml: Collection Format Governor List Op_join Op_pick Op_project Op_select Op_threshold Pattern
