lib/core/op_select.mli: Matcher Pattern Stree
