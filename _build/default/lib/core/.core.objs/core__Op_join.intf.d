lib/core/op_join.mli: Pattern Stree
