lib/core/op_group.mli: Stree
