lib/core/matcher.mli: Pattern Stree
