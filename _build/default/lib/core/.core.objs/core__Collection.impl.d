lib/core/collection.ml: Format List Stree
