lib/core/scorers.mli: Pattern
