lib/core/scorers.ml: Ir List Pattern Stree
