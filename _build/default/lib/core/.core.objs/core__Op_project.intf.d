lib/core/op_project.mli: Pattern Stree
