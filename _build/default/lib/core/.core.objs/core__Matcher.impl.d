lib/core/matcher.ml: Hashtbl List Option Pattern Stree
