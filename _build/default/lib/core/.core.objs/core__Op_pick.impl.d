lib/core/op_pick.ml: List Op_project Pattern Stree
