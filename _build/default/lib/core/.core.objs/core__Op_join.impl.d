lib/core/op_join.ml: List Op_select Stree
