lib/core/governor.ml: Format Printf Unix
