lib/core/algebra.mli: Collection Format Op_pick Op_threshold Pattern
