lib/core/algebra.mli: Collection Format Governor Op_pick Op_threshold Pattern
