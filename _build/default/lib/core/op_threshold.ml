type condition = Min_score of float | Top_rank of int
type tc = { var : int; condition : condition }

let match_scores pat var tree =
  List.filter_map
    (fun (n : Stree.t) -> n.score)
    (Matcher.matches_of_var pat var tree)

let satisfies_min pat var v tree =
  List.exists (fun s -> s > v) (match_scores pat var tree)

(* K-based thresholding needs the global ranking of matches across the
   collection (Sec. 5.3): compute the K-th best score and fall back to
   a min-score test at that cut, breaking ties by keeping them (the
   paper's definition is rank-based on scores). *)
let kth_best_score pat var k trees =
  let all = List.concat_map (match_scores pat var) trees in
  let sorted = List.sort (fun a b -> compare b a) all in
  let rec nth i = function
    | [] -> None
    | s :: rest -> if i = k then Some s else nth (i + 1) rest
  in
  nth 1 sorted

let threshold (pat : Pattern.t) (tcs : tc list) trees =
  let keep_for tc =
    match tc.condition with
    | Min_score v -> fun tree -> satisfies_min pat tc.var v tree
    | Top_rank k -> begin
      match kth_best_score pat tc.var k trees with
      | None -> fun _ -> true (* fewer than K matches: keep everything *)
      | Some cut ->
        fun tree -> List.exists (fun s -> s >= cut) (match_scores pat tc.var tree)
    end
  in
  let preds = List.map keep_for tcs in
  List.filter (fun tree -> List.for_all (fun p -> p tree) preds) trees

let top_k_by_score k trees =
  let indexed = List.mapi (fun i t -> (i, t)) trees in
  let sorted =
    List.sort
      (fun (i, a) (j, b) ->
        match compare (Stree.score b) (Stree.score a) with
        | 0 -> compare i j
        | c -> c)
      indexed
  in
  List.filteri (fun rank _ -> rank < k) (List.map snd sorted)
