type axis = Child | Descendant | Self_or_descendant

type pred =
  | True
  | Tag of string
  | Content_eq of string
  | Content_has of string
  | Attr of string * string
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

type scorer = { scorer_name : string; eval : Stree.t -> float }

type score_expr =
  | Node_score of scorer
  | Best_of of int
  | Similarity of {
      left : int;
      right : int;
      sim_name : string;
      sim : string -> string -> float;
    }
  | Combine of {
      comb_name : string;
      inputs : score_expr list;
      eval : float list -> float;
    }
  | Const of float

type rule = { target : int; expr : score_expr }
type pnode = { var : int; axis : axis; pred : pred; children : pnode list }
type t = { root : pnode; rules : rule list }

let pnode ?(axis = Child) ?(pred = True) var children =
  { var; axis; pred; children }

let make root rules = { root; rules }

let rec vars_of_pnode acc p =
  List.fold_left vars_of_pnode (p.var :: acc) p.children

let vars t = List.rev (vars_of_pnode [] t.root)

let find_var t var =
  let rec go p =
    if p.var = var then Some p else List.find_map go p.children
  in
  go t.root

let rule_for t var = List.find_opt (fun r -> r.target = var) t.rules

let is_primary t var =
  match rule_for t var with
  | Some { expr = Node_score _; _ } -> true
  | Some _ | None -> false

let is_ir_node t var =
  match rule_for t var with
  | Some _ -> true
  | None ->
    (match find_var t var with
    | None -> false
    | Some p ->
      let rec has_primary p =
        is_primary t p.var || List.exists has_primary p.children
      in
      List.exists has_primary p.children)

let rec holds pred (node : Stree.t) =
  match pred with
  | True -> true
  | Tag tag -> node.tag = tag
  | Content_eq s -> String.trim (Stree.all_text node) = s
  | Content_has phrase ->
    Ir.Phrase.contains ~terms:(Ir.Phrase.parse phrase) (Stree.all_text node)
  | Attr (name, value) -> List.assoc_opt name node.attrs = Some value
  | And (a, b) -> holds a node && holds b node
  | Or (a, b) -> holds a node || holds b node
  | Not a -> not (holds a node)

let pp_axis ppf = function
  | Child -> Format.pp_print_string ppf "pc"
  | Descendant -> Format.pp_print_string ppf "ad"
  | Self_or_descendant -> Format.pp_print_string ppf "ad*"

let rec pp_pred ppf = function
  | True -> Format.pp_print_string ppf "true"
  | Tag tag -> Format.fprintf ppf "tag=%s" tag
  | Content_eq s -> Format.fprintf ppf "content=%S" s
  | Content_has s -> Format.fprintf ppf "contains(%S)" s
  | Attr (k, v) -> Format.fprintf ppf "@%s=%S" k v
  | And (a, b) -> Format.fprintf ppf "(%a & %a)" pp_pred a pp_pred b
  | Or (a, b) -> Format.fprintf ppf "(%a | %a)" pp_pred a pp_pred b
  | Not a -> Format.fprintf ppf "!(%a)" pp_pred a

let rec pp_expr ppf = function
  | Node_score s -> Format.fprintf ppf "%s($self)" s.scorer_name
  | Best_of v -> Format.fprintf ppf "best($%d)" v
  | Similarity { left; right; sim_name; _ } ->
    Format.fprintf ppf "%s($%d, $%d)" sim_name left right
  | Combine { comb_name; inputs; _ } ->
    Format.fprintf ppf "%s(%a)" comb_name
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
         pp_expr)
      inputs
  | Const c -> Format.fprintf ppf "%g" c

let pp ppf t =
  let rec pp_pnode ppf p =
    Format.fprintf ppf "@[<v 2>$%d[%a]{%a}" p.var pp_axis p.axis pp_pred p.pred;
    List.iter (fun c -> Format.fprintf ppf "@,%a" pp_pnode c) p.children;
    Format.fprintf ppf "@]"
  in
  Format.fprintf ppf "@[<v>T: %a@,S:" pp_pnode t.root;
  List.iter
    (fun r -> Format.fprintf ppf "@,  $%d.score = %a" r.target pp_expr r.expr)
    t.rules;
  Format.fprintf ppf "@]"
