type limits = {
  max_steps : int option;
  timeout_s : float option;
  max_results : int option;
}

let unlimited = { max_steps = None; timeout_s = None; max_results = None }

let limits ?max_steps ?timeout_s ?max_results () =
  { max_steps; timeout_s; max_results }

type reason = Steps | Timeout | Results

type violation = {
  reason : reason;
  steps : int;
  elapsed_s : float;
  limit : string;
}

exception Resource_exhausted of violation

let pp_violation ppf v =
  Format.fprintf ppf "resource exhausted after %d steps (%.3f s): %s" v.steps
    v.elapsed_s v.limit

let violation_to_string v = Format.asprintf "%a" pp_violation v

type t = {
  l : limits;
  started : float;
  deadline : float;  (** absolute; [infinity] when unbounded *)
  mutable steps : int;
}

let now () = Unix.gettimeofday ()

let start l =
  let started = now () in
  {
    l;
    started;
    deadline =
      (match l.timeout_s with Some s -> started +. s | None -> infinity);
    steps = 0;
  }

let steps t = t.steps

let exhaust t reason limit =
  raise
    (Resource_exhausted
       { reason; steps = t.steps; elapsed_s = now () -. t.started; limit })

let check_deadline t =
  if t.deadline < infinity && now () > t.deadline then
    exhaust t Timeout
      (Printf.sprintf "deadline of %g s" (t.deadline -. t.started))

let check_steps t =
  match t.l.max_steps with
  | Some m when t.steps > m ->
    exhaust t Steps (Printf.sprintf "step budget of %d" m)
  | Some _ | None -> ()

let tick t =
  t.steps <- t.steps + 1;
  check_steps t;
  (* sample the clock sparsely: ticks are the hot path *)
  if t.steps land 127 = 0 then check_deadline t

let tick_n t n =
  if n > 0 then begin
    let before = t.steps lsr 7 in
    t.steps <- t.steps + n;
    check_steps t;
    if t.steps lsr 7 <> before then check_deadline t
  end

let check_results t n =
  match t.l.max_results with
  | Some m when n > m ->
    exhaust t Results
      (Printf.sprintf "result cap of %d (got %d)" m n)
  | Some _ | None -> ()
