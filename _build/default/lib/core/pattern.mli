(** Scored pattern trees (Definition 2).

    A scored pattern tree is a triple [(T, F, S)]: a tree [T] of
    integer-labeled variables with pc / ad / ad* edges, a boolean
    formula [F] of node predicates, and a set [S] of scoring rules
    defining how matched IR-nodes are scored. Here the per-variable
    predicates and the scoring rules are attached directly to the
    variables, which is the conjunctive fragment the paper's example
    queries use. *)

type axis =
  | Child  (** pc *)
  | Descendant  (** ad *)
  | Self_or_descendant  (** ad* *)

type pred =
  | True
  | Tag of string
  | Content_eq of string  (** whole-subtree text equals, after trimming *)
  | Content_has of string  (** contains the given phrase (stemmed) *)
  | Attr of string * string
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

type scorer = {
  scorer_name : string;
  eval : Stree.t -> float;  (** applied to a matched data node *)
}

type score_expr =
  | Node_score of scorer
      (** a primary IR-node: score the matched node itself *)
  | Best_of of int
      (** a secondary IR-node: the highest score among the data
          IR-nodes matching the given variable (Sec. 3.2.2) *)
  | Similarity of {
      left : int;
      right : int;
      sim_name : string;
      sim : string -> string -> float;
    }  (** an IR-style join condition on two matched nodes' content *)
  | Combine of {
      comb_name : string;
      inputs : score_expr list;
      eval : float list -> float;
    }
  | Const of float

type rule = { target : int; expr : score_expr }

type pnode = { var : int; axis : axis; pred : pred; children : pnode list }

type t = { root : pnode; rules : rule list }

val pnode : ?axis:axis -> ?pred:pred -> int -> pnode list -> pnode
(** [axis] defaults to [Child] (ignored on the pattern root);
    [pred] defaults to [True]. *)

val make : pnode -> rule list -> t

val vars : t -> int list
(** All variables, in preorder. *)

val find_var : t -> int -> pnode option

val rule_for : t -> int -> rule option
(** The scoring rule targeting the given variable, if any. *)

val is_primary : t -> int -> bool
(** The variable carries a [Node_score] rule. *)

val is_ir_node : t -> int -> bool
(** The variable carries any scoring rule, or has a primary IR-node
    in its pattern subtree (which makes it a secondary IR-node,
    Sec. 3.1). *)

val holds : pred -> Stree.t -> bool
(** Predicate evaluation against a data node. *)

val pp : Format.formatter -> t -> unit
