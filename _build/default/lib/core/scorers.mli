(** The paper's user-defined scoring functions (Fig. 9) and the more
    realistic tf·idf alternative it mentions. *)

val score_foo :
  ?primary_weight:float ->
  ?secondary_weight:float ->
  primary:string list ->
  secondary:string list ->
  unit ->
  Pattern.scorer
(** ScoreFoo: weighted sum of phrase-occurrence counts over the
    node's whole text ([alltext()]); primary phrases default to
    weight 0.8, secondary to 0.6. Phrases are given as strings
    ("information retrieval") and matched stemmed. *)

val tfidf :
  doc_count:int ->
  doc_freq:(string -> int) ->
  terms:string list ->
  unit ->
  Pattern.scorer
(** Sum of element-size-normalized tf·idf weights of the query
    terms, the "more representative of what an IR system would do"
    scoring of Sec. 3.1. *)

val bm25 :
  doc_count:int ->
  doc_freq:(string -> int) ->
  avg_size:float ->
  terms:string list ->
  unit ->
  Pattern.scorer
(** Sum of Okapi BM25 contributions of the query terms over the
    node's text; [avg_size] is the collection's average element size
    in tokens. *)

val score_sim : string -> string -> float
(** ScoreSim: number of terms common to both texts. *)

val cosine_sim : string -> string -> float

val score_bar : float list -> float
(** ScoreBar: [simScore + irScore] when the IR score is positive,
    0 otherwise. Expects exactly two inputs (joinScore, score). *)
