(** Scored data trees (Definition 1).

    A scored data tree is a rooted ordered tree whose nodes carry a
    tag, attributes and a real-valued score; the score of a tree is
    the score of its root. A score of [None] is the null score of an
    unmatched node. *)

type id =
  | Stored of { doc : int; start : int }
      (** identity of a node coming from the database *)
  | Synthetic of int  (** constructed nodes, e.g. [tix_prod_root] *)

type t = {
  tag : string;
  attrs : (string * string) list;
  score : float option;
  id : id;
  children : child list;
}

and child = Node of t | Content of string

val fresh_id : unit -> id
(** A new synthetic id (process-wide counter). *)

val make : ?attrs:(string * string) list -> ?score:float -> ?id:id -> string -> child list -> t

val score : t -> float
(** The root's score, 0 when null. *)

val with_score : t -> float -> t
val child_nodes : t -> t list

val of_element : ?id_of:(Xmlkit.Tree.element -> id) -> Xmlkit.Tree.element -> t
(** Convert an unscored XML tree; every score is null. [id_of]
    assigns identities (default: fresh synthetic ids). *)

val of_numbered : Xmlkit.Numbering.t -> doc:int -> t
(** Convert a numbered document so each node's id is
    [Stored {doc; start}]. *)

val to_element : ?score_attr:string -> t -> Xmlkit.Tree.element
(** Back to plain XML. When [score_attr] is given, non-null scores
    are emitted as that attribute. *)

val all_text : t -> string
(** Concatenated descendant text, space separated (the [alltext()]
    of Fig. 9). *)

val self_or_descendants : t -> t list
(** Document-order list: the node then its descendants. *)

val find : (t -> bool) -> t -> t option
val find_by_id : t -> id -> t option

val size : t -> int
(** Number of element nodes in the subtree. *)

val equal_id : id -> id -> bool
val pp_id : Format.formatter -> id -> unit

val pp : Format.formatter -> t -> unit
(** Render as XML with scores in square brackets, as in the paper's
    figures. *)
