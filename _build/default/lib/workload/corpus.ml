type config = {
  articles : int;
  seed : int;
  chapters_per_article : int;
  sections_per_chapter : int;
  paragraphs_per_section : int;
  words_per_paragraph : int;
  vocabulary : int;
  planted_terms : (string * int) list;
  planted_phrases : (string * string * int) list;
}

let default =
  {
    articles = 200;
    seed = 42;
    chapters_per_article = 3;
    sections_per_chapter = 3;
    paragraphs_per_section = 4;
    words_per_paragraph = 30;
    vocabulary = 5000;
    planted_terms = [];
    planted_phrases = [];
  }

let paragraphs_per_article cfg =
  cfg.chapters_per_article * cfg.sections_per_chapter
  * cfg.paragraphs_per_section

let paragraph_capacity cfg = cfg.articles * paragraphs_per_article cfg

let author_surnames =
  [| "Doe"; "Smith"; "Chen"; "Garcia"; "Patel"; "Kim"; "Okafor"; "Novak";
     "Silva"; "Mueller" |]

let author_fnames =
  [| "Jane"; "John"; "Wei"; "Ana"; "Ravi"; "Mina"; "Chinua"; "Petra";
     "Luis"; "Greta" |]

(* An insertion is a word or an adjacent word pair to splice into a
   paragraph's word list at a random offset. *)
type insertion = Word of string | Pair of string * string

(* Distribute plants over paragraph slots. Returns an array mapping
   global paragraph index to its insertions. *)
let plan_insertions cfg state =
  let capacity = paragraph_capacity cfg in
  if capacity = 0 then [||]
  else begin
    let slots = Array.make capacity [] in
    let place ins =
      let slot = Random.State.int state capacity in
      slots.(slot) <- ins :: slots.(slot)
    in
    List.iter
      (fun (term, freq) ->
        if freq < 0 then invalid_arg "Corpus: negative planted frequency";
        for _ = 1 to freq do
          place (Word term)
        done)
      cfg.planted_terms;
    List.iter
      (fun (t1, t2, freq) ->
        if freq < 0 then invalid_arg "Corpus: negative planted frequency";
        for _ = 1 to freq do
          place (Pair (t1, t2))
        done)
      cfg.planted_phrases;
    slots
  end

let splice_insertions state words insertions =
  List.fold_left
    (fun words ins ->
      let extra =
        match ins with Word w -> [ w ] | Pair (a, b) -> [ a; b ]
      in
      let n = List.length words in
      let at = if n = 0 then 0 else Random.State.int state (n + 1) in
      let rec go i = function
        | [] -> extra
        | w :: rest -> if i = at then extra @ (w :: rest) else w :: go (i + 1) rest
      in
      go 0 words)
    words insertions

let title_of gen state =
  String.concat " "
    (List.map String.capitalize_ascii
       (Text_gen.sentence gen state ~min_words:2 ~max_words:5))

(* Article metadata comes from its own random stream (seed, i, 31) so
   it is reproducible independently of body generation order; the
   review generator re-derives titles from it. *)
let article_header cfg gen i =
  let state = Random.State.make [| cfg.seed; i; 31 |] in
  let title = title_of gen state in
  let fname = author_fnames.(Random.State.int state (Array.length author_fnames)) in
  let sname = author_surnames.(Random.State.int state (Array.length author_surnames)) in
  (title, fname, sname)

let generate cfg =
  let total_plants =
    List.fold_left (fun acc (_, f) -> acc + f) 0 cfg.planted_terms
    + List.fold_left (fun acc (_, _, f) -> acc + f) 0 cfg.planted_phrases
  in
  let capacity = paragraph_capacity cfg in
  if total_plants > 0 && capacity = 0 then
    invalid_arg "Corpus.generate: plants but no paragraphs";
  if capacity > 0 && total_plants > capacity * cfg.words_per_paragraph then
    invalid_arg "Corpus.generate: planted occurrences exceed corpus capacity";
  let gen = Text_gen.create ~vocabulary:cfg.vocabulary () in
  (* One state for planning (so plant placement is independent of
     article text) and a per-article state for text. *)
  let plan_state = Random.State.make [| cfg.seed; 7919 |] in
  let slots = plan_insertions cfg plan_state in
  let paragraph state idx =
    let min_words = max 5 (cfg.words_per_paragraph - 10) in
    let max_words = cfg.words_per_paragraph + 10 in
    let words = Text_gen.sentence gen state ~min_words ~max_words in
    let words =
      if idx < Array.length slots && slots.(idx) <> [] then
        splice_insertions state words slots.(idx)
      else words
    in
    Xmlkit.Tree.el "p" [ Xmlkit.Tree.text (String.concat " " words) ]
  in
  let article i =
    let state = Random.State.make [| cfg.seed; i |] in
    let para_base = i * paragraphs_per_article cfg in
    let local_para = ref 0 in
    let next_paragraph () =
      let idx = para_base + !local_para in
      incr local_para;
      paragraph state idx
    in
    let title, fname, sname = article_header cfg gen i in
    let section () =
      Xmlkit.Tree.el "section"
        (Xmlkit.Tree.el "section-title"
           [ Xmlkit.Tree.text (title_of gen state) ]
        :: List.init cfg.paragraphs_per_section (fun _ -> next_paragraph ()))
    in
    let chapter () =
      Xmlkit.Tree.el "chapter"
        (Xmlkit.Tree.el "ct" [ Xmlkit.Tree.text (title_of gen state) ]
        :: List.init cfg.sections_per_chapter (fun _ -> section ()))
    in
    let root =
      Xmlkit.Tree.elem "article"
        (Xmlkit.Tree.el "article-title" [ Xmlkit.Tree.text title ]
        :: Xmlkit.Tree.el "author"
             ~attrs:[ ("id", "first") ]
             [
               Xmlkit.Tree.el "fname" [ Xmlkit.Tree.text fname ];
               Xmlkit.Tree.el "sname" [ Xmlkit.Tree.text sname ];
             ]
        :: List.init cfg.chapters_per_article (fun _ -> chapter ()))
    in
    (Printf.sprintf "article-%d.xml" i, root)
  in
  Seq.init cfg.articles article

let generate_reviews ?(per_article = 1) cfg =
  let gen = Text_gen.create ~vocabulary:cfg.vocabulary () in
  let review ~article_idx ~k =
    let state = Random.State.make [| cfg.seed; article_idx; 7907 + k |] in
    let article_title, _, _ = article_header cfg gen article_idx in
    (* the review title shares the article title's words, sometimes
       with an extra word or a dropped word *)
    let words = String.split_on_char ' ' article_title in
    let title =
      match Random.State.int state 3 with
      | 0 -> article_title
      | 1 -> String.concat " " (words @ [ "Revisited" ])
      | _ -> begin
        match words with
        | _ :: (_ :: _ as rest) -> String.concat " " rest
        | short -> String.concat " " short
      end
    in
    let reviewer = author_surnames.(Random.State.int state (Array.length author_surnames)) in
    let rating = 1 + Random.State.int state 5 in
    let comments =
      String.concat " "
        (Text_gen.sentence gen state ~min_words:10 ~max_words:25)
    in
    Xmlkit.Tree.elem "review"
      ~attrs:[ ("id", string_of_int ((article_idx * per_article) + k)) ]
      [
        Xmlkit.Tree.el "title" [ Xmlkit.Tree.text title ];
        Xmlkit.Tree.el "reviewer"
          [
            Xmlkit.Tree.el "sname" [ Xmlkit.Tree.text reviewer ];
          ];
        Xmlkit.Tree.el "comments" [ Xmlkit.Tree.text comments ];
        Xmlkit.Tree.el "rating" [ Xmlkit.Tree.text (string_of_int rating) ];
      ]
  in
  Seq.concat_map
    (fun article_idx ->
      Seq.init per_article (fun k ->
          ( Printf.sprintf "review-%d.xml" ((article_idx * per_article) + k),
            review ~article_idx ~k )))
    (Seq.init cfg.articles (fun i -> i))
