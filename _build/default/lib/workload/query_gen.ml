type spec = {
  document : string;
  tags : string list;
  terms : string list;
  surnames : string list;
  seed : int;
}

let default_spec =
  {
    document = "article-*.xml";
    tags = [ "article"; "chapter"; "section" ];
    terms = [];
    surnames = Array.to_list Corpus.author_surnames;
    seed = 1;
  }

let pick_from state l =
  match l with
  | [] -> invalid_arg "Query_gen: empty pool"
  | l -> List.nth l (Random.State.int state (List.length l))

let subset state l ~min_size =
  let chosen = List.filter (fun _ -> Random.State.bool state) l in
  if List.length chosen >= min_size then chosen
  else begin
    (* ensure at least [min_size] entries *)
    let rec take n = function
      | [] -> []
      | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest
    in
    take (max min_size 1) l
  end

let quoted_set phrases =
  "{" ^ String.concat ", " (List.map (Printf.sprintf "%S") phrases) ^ "}"

let one state spec =
  let buf = Buffer.create 256 in
  let tag = pick_from state spec.tags in
  let predicate =
    if Random.State.int state 3 = 0 && spec.surnames <> [] then
      Printf.sprintf "[author/sname = %S]" (pick_from state spec.surnames)
    else ""
  in
  let ad_star = Random.State.bool state in
  Buffer.add_string buf
    (Printf.sprintf "for $a in document(%S)//%s%s%s\n" spec.document tag
       predicate
       (if ad_star then "/descendant-or-self::*" else ""));
  let primary = subset state spec.terms ~min_size:1 in
  let secondary =
    List.filter (fun t -> not (List.mem t primary)) spec.terms
    |> fun rest -> subset state rest ~min_size:0
  in
  Buffer.add_string buf
    (Printf.sprintf "score $a using ScoreFoo($a, %s, %s)\n"
       (quoted_set primary) (quoted_set secondary));
  if Random.State.bool state then
    Buffer.add_string buf "pick $a using PickFoo()\n";
  Buffer.add_string buf
    "return <result><score>{$a/@score}</score>{$a}</result>\n";
  Buffer.add_string buf "sortby(score)\n";
  if Random.State.bool state then begin
    let v = Random.State.int state 3 in
    let stop =
      if Random.State.bool state then
        Printf.sprintf " stop after %d" (1 + Random.State.int state 10)
      else ""
    in
    Buffer.add_string buf (Printf.sprintf "threshold $a/@score > %d%s\n" v stop)
  end;
  Buffer.contents buf

let generate ?(count = 20) spec =
  if spec.terms = [] then invalid_arg "Query_gen.generate: no terms";
  let state = Random.State.make [| spec.seed; 104729 |] in
  List.init count (fun _ -> one state spec)
