(** Synthetic INEX-like corpus with planted term frequencies.

    The paper's experiments are parameterized by exact term
    frequencies ("a query with two terms each occurring around 20
    times in the database"). The INEX IEEE collection is not
    redistributable, so this generator produces a corpus of technical
    articles with the same shape (article / front matter / chapters /
    sections / paragraphs) and {e plants} designated terms with exact
    total frequencies, spread uniformly over all paragraphs. Phrases
    (ordered adjacent pairs) are planted the same way for the
    PhraseFinder experiment. *)

type config = {
  articles : int;
  seed : int;
  chapters_per_article : int;
  sections_per_chapter : int;
  paragraphs_per_section : int;
  words_per_paragraph : int;  (** average; actual varies around it *)
  vocabulary : int;
  planted_terms : (string * int) list;  (** term, exact total frequency *)
  planted_phrases : (string * string * int) list;
      (** first term, second term, number of adjacent occurrences;
          contributes to each term's frequency on top of
          [planted_terms] *)
}

val default : config
(** 200 articles, 3 chapters x 3 sections x 4 paragraphs, ~30 words
    per paragraph, no plants. *)

val paragraph_capacity : config -> int
(** Total number of paragraphs; plants must fit. *)

val generate : config -> (string * Xmlkit.Tree.element) Seq.t
(** The documents, one per article, named ["article-N.xml"].
    Deterministic in [config.seed]. Raises [Invalid_argument] when a
    plant exceeds capacity. *)

val author_surnames : string array
(** Surname pool used for [author/sname]; includes "Doe", so the
    paper's Query 2 predicate selects a deterministic subset. *)

val generate_reviews : ?per_article:int -> config -> (string * Xmlkit.Tree.element) Seq.t
(** Review documents in the shape of the paper's [reviews.xml]
    (Fig. 1): each article receives [per_article] (default 1)
    reviews named ["review-N.xml"], whose [title] shares words with
    the reviewed article's title — so title-similarity joins
    (Query 3) find real matches — plus a [reviewer] and a numeric
    [rating]. Deterministic in [config.seed]. *)
