open Xmlkit.Tree

let article =
  elem "article"
    [
      el "article-title" [ text "Ranked Retrieval over Structured Documents" ];
      el "author"
        [ el "fname" [ text "Ada" ]; el "sname" [ text "Doe" ] ];
      el "chapter"
        [
          el "ct" [ text "Why Ranking Matters" ];
          el "section"
            [
              el "section-title" [ text "Boolean Retrieval and its Limits" ];
              el "p"
                [
                  text
                    "A boolean query engine returns every element that \
                     satisfies a predicate and nothing else. When documents \
                     carry long natural language passages, users rarely know \
                     the exact vocabulary of the relevant elements, so \
                     boolean conjunctions silently drop good answers and \
                     boolean disjunctions bury them in noise.";
                ];
              el "p"
                [
                  text
                    "Relevance scoring addresses the vocabulary mismatch: a \
                     search engine assigns every candidate a score and \
                     presents a ranking, so a paragraph about inverted \
                     indexes can surface even when it never uses the exact \
                     words of the query.";
                ];
            ];
          el "section"
            [
              el "section-title" [ text "Scoring Structured Text" ];
              el "p"
                [
                  text
                    "In an XML database the unit of retrieval is not fixed: \
                     a query about inverted index maintenance might best be \
                     answered by a paragraph, a section, or a whole chapter. \
                     Scores must therefore be computed for elements at every \
                     granularity, using the text of all their descendants.";
                ];
            ];
        ];
      el "chapter"
        [
          el "ct" [ text "Evaluation Strategies" ];
          el "section"
            [
              el "section-title" [ text "Stack Based Joins" ];
              el "p"
                [
                  text
                    "Because interval identifiers order elements by document \
                     position, a single merge pass with a stack of open \
                     ancestors can score every element that contains a query \
                     term occurrence, without touching unrelated parts of \
                     the database.";
                ];
            ];
        ];
    ]

let book =
  elem "book"
    [
      el "title" [ text "Foundations of Database Systems" ];
      el "frontmatter"
        [
          el "isbn" [ text "978-0-000-00000-0" ];
          el "publisher" [ text "Lorem Press" ];
        ];
      el "part"
        [
          el "part-title" [ text "Storage" ];
          el "chapter"
            [
              el "heading" [ text "Pages and Buffers" ];
              el "para"
                [
                  text
                    "A database stores records in fixed size pages and keeps \
                     a buffer pool of recently used pages in memory. Every \
                     access method is ultimately a pattern of page reads, \
                     which is why a full table scan and an index lookup have \
                     such different costs.";
                ];
              el "para"
                [
                  text
                    "An inverted index is itself a storage structure: for \
                     every term it keeps a compressed posting list of the \
                     positions where the term occurs, ordered so that merge \
                     algorithms can stream through it once.";
                ];
            ];
        ];
      el "part"
        [
          el "part-title" [ text "Query Processing" ];
          el "chapter"
            [
              el "heading" [ text "Join Algorithms" ];
              el "para"
                [
                  text
                    "Join operators dominate query cost. For hierarchical \
                     data the containment join pairs ancestors with \
                     descendants; holistic variants evaluate a whole path in \
                     one coordinated pass instead of a sequence of binary \
                     joins.";
                ];
            ];
        ];
    ]

let faq =
  elem "faq"
    [
      el "topic" [ text "Search Engines" ];
      el "qa"
        [
          el "question" [ text "What does a search engine index contain?" ];
          el "answer"
            [
              text
                "Most search engines build an inverted index: a dictionary \
                 of terms, each pointing to a posting list of the documents \
                 and positions where the term appears, often with counts \
                 used for relevance scoring.";
            ];
        ];
      el "qa"
        [
          el "question" [ text "Why do rankings differ between engines?" ];
          el "answer"
            [
              text
                "Scoring functions weigh term frequency, document length and \
                 rarity differently, and some engines add structural signals \
                 such as titles, so the same query produces different \
                 rankings.";
            ];
        ];
      el "qa"
        [
          el "question" [ text "Can structured data be searched this way?" ];
          el "answer"
            [
              text
                "Yes: when documents are XML, relevance can be computed for \
                 any element, and the engine must choose the right \
                 granularity to return, for example an answer element \
                 rather than the whole faq.";
            ];
        ];
    ]

let paper =
  elem "paper"
    [
      el "title" [ text "A Note on Granularity in XML Retrieval" ];
      el "abstract"
        [
          text
            "We study which element of a matching document a retrieval \
             system should return. Returning the root loses focus; \
             returning leaves loses context. We argue the decision must \
             compare each element's score with the scores of its children.";
        ];
      el "sec"
        [
          el "sec-title" [ text "The Redundancy Problem" ];
          el "body"
            [
              text
                "If an element is returned, returning its parent as well \
                 tells the user nothing new. Eliminating this parent child \
                 redundancy requires a pass over the scored tree, because \
                 whether a node is worth returning depends on its children \
                 and whether its parent was already chosen.";
            ];
        ];
      el "sec"
        [
          el "sec-title" [ text "Discussion" ];
          el "body"
            [
              text
                "A histogram of scores helps users pick thresholds: instead \
                 of an absolute score a user asks for the top decile, and \
                 the system translates that into a cutoff.";
            ];
        ];
    ]

let documents =
  [
    ("library-article.xml", article);
    ("library-book.xml", book);
    ("library-faq.xml", faq);
    ("library-paper.xml", paper);
  ]
