(** Random query workloads over a generated corpus.

    Produces extended-XQuery strings in the compilable Query-1/2
    shape, drawing tags and terms from the given pools. Used by the
    test suite to fuzz the parser, the interpreter and the
    interpreter-vs-compiled equivalence, and by benchmarks that need
    many distinct queries. *)

type spec = {
  document : string;  (** document() argument, may contain [*] *)
  tags : string list;  (** anchor tags to draw from *)
  terms : string list;  (** single-word terms to score with *)
  surnames : string list;  (** values for the author predicate *)
  seed : int;
}

val default_spec : spec
(** Targets the synthetic corpus: document "article-*.xml", anchors
    article/chapter/section, surnames from
    {!Corpus.author_surnames}. *)

val generate : ?count:int -> spec -> string list
(** [count] query strings (default 20), deterministic in the seed. *)
