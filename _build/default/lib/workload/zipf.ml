type t = { cdf : float array }

let create ?(exponent = 1.1) n =
  if n <= 0 then invalid_arg "Zipf.create: empty support";
  let weights =
    Array.init n (fun i -> 1. /. (float_of_int (i + 1) ** exponent))
  in
  let total = Array.fold_left ( +. ) 0. weights in
  let cdf = Array.make n 0. in
  let acc = ref 0. in
  Array.iteri
    (fun i w ->
      acc := !acc +. (w /. total);
      cdf.(i) <- !acc)
    weights;
  cdf.(n - 1) <- 1.;
  { cdf }

let sample t state =
  let u = Random.State.float state 1. in
  (* first rank whose cdf >= u *)
  let lo = ref 0 and hi = ref (Array.length t.cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) >= u then hi := mid else lo := mid + 1
  done;
  !lo

let support t = Array.length t.cdf
