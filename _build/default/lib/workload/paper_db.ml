open Xmlkit.Tree

(* Text placeholders ("...") in Figure 1 are rendered as neutral
   filler words that contain none of the query terms. *)
let filler = "lorem ipsum filler prose"

let articles =
  elem "article"
    [
      el "article-title" [ text "Internet Technologies" ];
      el "author" ~attrs:[ ("id", "first") ]
        [ el "fname" [ text "Jane" ]; el "sname" [ text "Doe" ] ];
      el "chapter"
        [
          el "ct" [ text "Caching and Replication" ];
          el "p" [ text filler ];
        ];
      el "chapter"
        [ el "ct" [ text "Streaming Video" ]; el "p" [ text filler ] ];
      el "chapter"
        [
          el "ct" [ text "Search and Retrieval" ];
          el "section"
            [
              el "section-title" [ text "Search Engine Basics" ];
              el "p" [ text filler ];
            ];
          el "section"
            [
              el "section-title" [ text "Information Retrieval Techniques" ];
              el "p" [ text filler ];
            ];
          el "section"
            [
              el "section-title" [ text "Examples" ];
              el "p"
                [ text (filler ^ " Here are some IR based search engines:") ];
              el "p"
                [
                  text
                    (filler
                   ^ " search engine NewsInEssence uses a new information \
                      retrieval technology " ^ filler);
                ];
              el "p"
                [
                  text
                    (filler
                   ^ " semantic information retrieval techniques are also \
                      being incorporated into some search engines " ^ filler);
                ];
            ];
        ];
    ]

let review_1 =
  elem "review" ~attrs:[ ("id", "1") ]
    [
      el "title" [ text "Internet Technologies" ];
      el "reviewer"
        [ el "fname" [ text "John" ]; el "sname" [ text "Doe" ] ];
      el "comments" [ text filler ];
      el "rating" [ text "5" ];
    ]

let review_2 =
  elem "review" ~attrs:[ ("id", "2") ]
    [
      el "title" [ text "WWW Technologies" ];
      el "reviewer" [ text "Anonymous" ];
      el "comments" [ text filler ];
      el "rating" [ text "3" ];
    ]

let reviews = [ review_1; review_2 ]

let documents =
  [
    ("articles.xml", articles);
    ("review-1.xml", review_1);
    ("review-2.xml", review_2);
  ]
