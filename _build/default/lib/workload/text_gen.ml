type t = { words : string array; zipf : Zipf.t }

let syllables =
  [| "ba"; "ce"; "di"; "fo"; "gu"; "ha"; "je"; "ki"; "lo"; "mu"; "na"; "pe";
     "qi"; "ro"; "su"; "ta"; "ve"; "wi"; "xo"; "zu"; "bra"; "cle"; "dri";
     "flo"; "gru"; "sta"; "tre"; "pli"; "sno"; "kru" |]

(* Deterministic pseudo-word for a rank: 2-4 syllables driven by the
   rank's digits, unique per rank thanks to a numeric tail for
   collisions in the syllable space. *)
let word_of_rank rank =
  let n = Array.length syllables in
  let buf = Buffer.create 12 in
  let rec go r k =
    if k = 0 then ()
    else begin
      Buffer.add_string buf syllables.(r mod n);
      go (r / n) (k - 1)
    end
  in
  let k = 2 + (rank mod 3) in
  go (rank + 1) k;
  (* ranks that exhaust the syllable space get a disambiguating tail *)
  Buffer.add_string buf (string_of_int (rank / (n * n * n)));
  Buffer.contents buf

let create ?(vocabulary = 5000) ?exponent () =
  {
    words = Array.init vocabulary word_of_rank;
    zipf = Zipf.create ?exponent vocabulary;
  }

let word t rank = t.words.(rank)
let sample_word t state = t.words.(Zipf.sample t.zipf state)

let sentence t state ~min_words ~max_words =
  let n = min_words + Random.State.int state (max 1 (max_words - min_words + 1)) in
  List.init n (fun _ -> sample_word t state)
