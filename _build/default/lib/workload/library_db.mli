(** A small hand-written digital library with {e heterogeneous}
    schemas — the situation motivating the paper (Sec. 1:
    "collections of XML documents are frequently heterogeneous, with
    documents that do not share the same schema").

    Four documents about information retrieval and databases, each
    structured differently: a journal [article] (title / author /
    chapters / sections), a [book] (front matter / parts / chapters),
    a [faq] (flat question/answer pairs) and a conference [paper]
    (abstract / sections). Queries using the ad* axis and relevance
    scoring work across all of them without knowing any schema;
    boolean path queries do not. *)

val article : Xmlkit.Tree.element
val book : Xmlkit.Tree.element
val faq : Xmlkit.Tree.element
val paper : Xmlkit.Tree.element

val documents : (string * Xmlkit.Tree.element) list
(** All four, ready for [Store.Db.load]. *)
