(** Zipf-distributed sampling over ranks [0, n).

    Natural-language term frequencies are Zipfian; the synthetic
    corpus draws its background vocabulary from this distribution so
    posting-list length profiles resemble the INEX collection's. *)

type t

val create : ?exponent:float -> int -> t
(** [create n] prepares a sampler over ranks [0..n-1] with
    probability proportional to [1 / (rank+1) ** exponent]
    (default exponent 1.1). *)

val sample : t -> Random.State.t -> int
(** Draw a rank. *)

val support : t -> int
