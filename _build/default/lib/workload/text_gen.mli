(** Synthetic technical prose: a Zipfian background vocabulary of
    pronounceable pseudo-words. *)

type t

val create : ?vocabulary:int -> ?exponent:float -> unit -> t
(** [vocabulary] defaults to 5000 words. *)

val word : t -> int -> string
(** The pseudo-word at a vocabulary rank. *)

val sample_word : t -> Random.State.t -> string

val sentence : t -> Random.State.t -> min_words:int -> max_words:int -> string list
(** A list of words (no punctuation; the tokenizer ignores it
    anyway). *)
