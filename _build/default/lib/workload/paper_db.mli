(** The example XML database of the paper's Figure 1: [articles.xml]
    (one article on "Internet Technologies") and [reviews.xml] (two
    reviews). Used by tests and examples to replay the paper's worked
    queries. *)

val articles : Xmlkit.Tree.element
(** The [article] rooted at #a1. *)

val reviews : Xmlkit.Tree.element list
(** The two [review] elements, #r1 and #r8. *)

val documents : (string * Xmlkit.Tree.element) list
(** [articles.xml] plus each review as its own document, ready for
    [Store.Db.load]. *)
