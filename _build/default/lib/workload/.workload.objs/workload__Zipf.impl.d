lib/workload/zipf.ml: Array Random
