lib/workload/library_db.mli: Xmlkit
