lib/workload/corpus.mli: Seq Xmlkit
