lib/workload/corpus.ml: Array List Printf Random Seq String Text_gen Xmlkit
