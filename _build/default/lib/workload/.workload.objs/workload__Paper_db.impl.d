lib/workload/paper_db.ml: Xmlkit
