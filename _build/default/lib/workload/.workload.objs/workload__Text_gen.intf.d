lib/workload/text_gen.mli: Random
