lib/workload/zipf.mli: Random
