lib/workload/library_db.ml: Xmlkit
