lib/workload/paper_db.mli: Xmlkit
