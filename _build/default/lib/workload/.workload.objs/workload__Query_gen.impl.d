lib/workload/query_gen.ml: Array Buffer Corpus List Printf Random String
