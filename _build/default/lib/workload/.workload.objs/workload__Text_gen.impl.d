lib/workload/text_gen.ml: Array Buffer List Random Zipf
