(** Minimal glob matching with [*] wildcards, used to select loaded
    documents by name in [document("review-*.xml")]. *)

val matches : string -> string -> bool
(** [matches pattern name]. *)
