type error = { position : int; message : string }

exception Parse_error of error

let pp_error ppf e =
  Format.fprintf ppf "offset %d: %s" e.position e.message

type state = { mutable toks : (Lexer.token * int) list }

let fail st message =
  let position = match st.toks with (_, p) :: _ -> p | [] -> 0 in
  raise (Parse_error { position; message })

let peek st = match st.toks with (t, _) :: _ -> t | [] -> Lexer.EOF

let peek2 st =
  match st.toks with _ :: (t, _) :: _ -> t | _ -> Lexer.EOF

let advance st =
  match st.toks with _ :: rest -> st.toks <- rest | [] -> ()

let expect st tok what =
  if peek st = tok then advance st else fail st ("expected " ^ what)

let keyword_is word = function
  | Lexer.IDENT id -> String.lowercase_ascii id = word
  | _ -> false

let eat_keyword st word =
  if keyword_is word (peek st) then begin
    advance st;
    true
  end
  else false

let expect_keyword st word =
  if not (eat_keyword st word) then fail st ("expected keyword " ^ word)

let expect_ident st what =
  match peek st with
  | Lexer.IDENT id ->
    advance st;
    id
  | _ -> fail st ("expected " ^ what)

let expect_var st =
  match peek st with
  | Lexer.VAR v ->
    advance st;
    v
  | _ -> fail st "expected a variable"

let expect_string st =
  match peek st with
  | Lexer.STRING s ->
    advance st;
    s
  | _ -> fail st "expected a string literal"

let cmp_of_token = function
  | Lexer.EQ -> Some Ast.Eq
  | Lexer.NEQ -> Some Ast.Neq
  | Lexer.LT -> Some Ast.Lt
  | Lexer.LE -> Some Ast.Le
  | Lexer.GT -> Some Ast.Gt
  | Lexer.GE -> Some Ast.Ge
  | _ -> None

(* ------------------------------------------------------------------ *)
(* expressions *)

let rec parse_expr st = parse_or_expr st

and parse_or_expr st =
  let left = parse_and_expr st in
  if keyword_is "or" (peek st) then begin
    advance st;
    Ast.Or (left, parse_or_expr st)
  end
  else left

and parse_and_expr st =
  let left = parse_cmp_expr st in
  if keyword_is "and" (peek st) then begin
    advance st;
    Ast.And (left, parse_and_expr st)
  end
  else left

and parse_cmp_expr st =
  let left = parse_path_expr st in
  match cmp_of_token (peek st) with
  | Some c ->
    advance st;
    let right = parse_path_expr st in
    Ast.Cmp (c, left, right)
  | None -> left

and parse_path_expr st =
  let base = parse_primary st in
  let steps = parse_steps st [] in
  if steps = [] then base else Ast.Path (base, steps)

and parse_steps st acc =
  match peek st with
  | Lexer.SLASH | Lexer.DSLASH ->
    let deep = peek st = Lexer.DSLASH in
    advance st;
    let axis =
      match peek st with
      | Lexer.DOS ->
        advance st;
        Ast.Self_or_descendant
      | Lexer.AT ->
        advance st;
        Ast.Attribute (expect_ident st "attribute name")
      | Lexer.IDENT "text" when peek2 st = Lexer.LPAREN ->
        advance st;
        expect st Lexer.LPAREN "(";
        expect st Lexer.RPAREN ")";
        Ast.Text
      | Lexer.IDENT name ->
        advance st;
        if deep then Ast.Descendant name else Ast.Child name
      | _ -> fail st "expected a step after /"
    in
    let predicates = parse_predicates st [] in
    parse_steps st ({ Ast.step_axis = axis; predicates } :: acc)
  | _ -> List.rev acc

and parse_predicates st acc =
  if peek st = Lexer.LBRACKET then begin
    advance st;
    (* a predicate is a relative path, optionally compared *)
    let rel =
      (* allow leading / as in the paper's [/author/sname/...] *)
      (match peek st with
      | Lexer.SLASH | Lexer.DSLASH -> ()
      | _ -> ());
      let base = Ast.Var "." in
      let steps =
        match peek st with
        | Lexer.SLASH | Lexer.DSLASH -> parse_steps st []
        | Lexer.AT ->
          advance st;
          [ { Ast.step_axis = Ast.Attribute (expect_ident st "attribute name"); predicates = [] } ]
        | Lexer.IDENT _ ->
          (* bare relative path: inject an implicit child slash *)
          let name = expect_ident st "name" in
          let first = { Ast.step_axis = Ast.Child name; predicates = [] } in
          first :: parse_steps st []
        | _ -> fail st "expected a predicate path"
      in
      Ast.Path (base, steps)
    in
    let pred =
      match cmp_of_token (peek st) with
      | Some c ->
        advance st;
        let right = parse_primary st in
        Ast.Pred_cmp (c, rel, right)
      | None -> Ast.Pred_exists rel
    in
    expect st Lexer.RBRACKET "]";
    parse_predicates st (pred :: acc)
  end
  else List.rev acc

and parse_primary st =
  match peek st with
  | Lexer.VAR v ->
    advance st;
    Ast.Var v
  | Lexer.STRING s ->
    advance st;
    Ast.String_lit s
  | Lexer.NUMBER f ->
    advance st;
    Ast.Number_lit f
  | Lexer.LBRACE ->
    advance st;
    let rec items acc =
      match peek st with
      | Lexer.RBRACE ->
        advance st;
        List.rev acc
      | Lexer.STRING s ->
        advance st;
        if peek st = Lexer.COMMA then advance st;
        items (s :: acc)
      | _ -> fail st "expected a string inside { }"
    in
    Ast.String_set (items [])
  | Lexer.IDENT "document" when peek2 st = Lexer.LPAREN ->
    advance st;
    expect st Lexer.LPAREN "(";
    let name = expect_string st in
    expect st Lexer.RPAREN ")";
    Ast.Document name
  | Lexer.IDENT _ when peek2 st = Lexer.LPAREN ->
    let f = expect_ident st "function name" in
    expect st Lexer.LPAREN "(";
    let rec args acc =
      if peek st = Lexer.RPAREN then begin
        advance st;
        List.rev acc
      end
      else begin
        let a = parse_expr st in
        if peek st = Lexer.COMMA then advance st;
        args (a :: acc)
      end
    in
    Ast.Call (f, args [])
  | _ -> fail st "expected an expression"

(* ------------------------------------------------------------------ *)
(* constructors *)

let rec parse_constructor st =
  expect st Lexer.LT "<";
  let name = expect_ident st "element name" in
  (* attributes: name = { expr } or name = "literal" *)
  let rec attrs acc =
    match peek st with
    | Lexer.IDENT attr when peek2 st = Lexer.EQ ->
      advance st;
      advance st;
      let value =
        match peek st with
        | Lexer.LBRACE ->
          advance st;
          let e = parse_expr st in
          expect st Lexer.RBRACE "}";
          e
        | Lexer.STRING s ->
          advance st;
          Ast.String_lit s
        | _ -> fail st "expected an attribute value"
      in
      attrs ((attr, value) :: acc)
    | _ -> List.rev acc
  in
  let attributes = attrs [] in
  expect st Lexer.GT ">";
  let rec contents acc =
    match peek st with
    | Lexer.LT when peek2 st = Lexer.SLASH ->
      advance st;
      advance st;
      let close = expect_ident st "closing element name" in
      if close <> name then
        fail st (Printf.sprintf "mismatched </%s>, expected </%s>" close name);
      expect st Lexer.GT ">";
      List.rev acc
    | Lexer.LT -> contents (Ast.Nested (parse_constructor st) :: acc)
    | Lexer.LBRACE ->
      advance st;
      let e = parse_expr st in
      expect st Lexer.RBRACE "}";
      contents (Ast.Embedded e :: acc)
    | Lexer.IDENT w ->
      advance st;
      contents (Ast.Const_text w :: acc)
    | Lexer.STRING s ->
      advance st;
      contents (Ast.Const_text s :: acc)
    | Lexer.NUMBER f ->
      advance st;
      contents (Ast.Const_text (Printf.sprintf "%g" f) :: acc)
    | _ -> fail st "unexpected token in element content"
  in
  Ast.Elem_cons (name, attributes, contents [])

(* ------------------------------------------------------------------ *)
(* clauses *)

let parse_using_call st =
  expect_keyword st "using";
  let f = expect_ident st "function name" in
  expect st Lexer.LPAREN "(";
  let rec args acc =
    if peek st = Lexer.RPAREN then begin
      advance st;
      List.rev acc
    end
    else begin
      let a = parse_expr st in
      if peek st = Lexer.COMMA then advance st;
      args (a :: acc)
    end
  in
  (f, args [])

let parse_clause st =
  match peek st with
  | Lexer.IDENT id -> begin
    match String.lowercase_ascii id with
    | "for" ->
      advance st;
      let v = expect_var st in
      (* both "in" and ":=" appear in the paper's figures *)
      if not (eat_keyword st "in") then expect st Lexer.ASSIGN "in or :=";
      Some (Ast.For (v, parse_expr st))
    | "let" ->
      advance st;
      let v = expect_var st in
      expect st Lexer.ASSIGN ":=";
      Some (Ast.Let (v, parse_expr st))
    | "where" ->
      advance st;
      Some (Ast.Where (parse_expr st))
    | "score" ->
      advance st;
      let v = expect_var st in
      let f, args = parse_using_call st in
      Some (Ast.Score (v, f, args))
    | "pick" ->
      advance st;
      let v = expect_var st in
      let f, args = parse_using_call st in
      Some (Ast.Pick (v, f, args))
    | _ -> None
  end
  | _ -> None

let parse_query st =
  let rec clauses acc =
    match parse_clause st with
    | Some c -> clauses (c :: acc)
    | None -> List.rev acc
  in
  let clauses = clauses [] in
  if clauses = [] then fail st "a query starts with for/let";
  expect_keyword st "return";
  let returns = parse_constructor st in
  let sortby =
    if eat_keyword st "sortby" then begin
      expect st Lexer.LPAREN "(";
      let f = expect_ident st "sort field" in
      expect st Lexer.RPAREN ")";
      Some f
    end
    else None
  in
  let thresh =
    if eat_keyword st "threshold" then begin
      let e = parse_path_expr st in
      let c =
        match cmp_of_token (peek st) with
        | Some c ->
          advance st;
          c
        | None -> fail st "expected a comparison in threshold"
      in
      let v =
        match peek st with
        | Lexer.NUMBER f ->
          advance st;
          f
        | _ -> fail st "expected a number in threshold"
      in
      let stop_after =
        if eat_keyword st "stop" then begin
          expect_keyword st "after";
          match peek st with
          | Lexer.NUMBER f ->
            advance st;
            Some (int_of_float f)
          | _ -> fail st "expected a count after 'stop after'"
        end
        else None
      in
      Some { Ast.t_expr = e; t_cmp = c; t_value = v; stop_after }
    end
    else None
  in
  if peek st <> Lexer.EOF then fail st "trailing tokens after query";
  { Ast.clauses; returns; sortby; thresh }

let parse src =
  match Lexer.tokenize src with
  | exception Lexer.Error { pos; message } ->
    Error { position = pos; message }
  | toks -> begin
    let st = { toks } in
    match parse_query st with
    | q -> Ok q
    | exception Parse_error e -> Error e
  end

let parse_exn src =
  match parse src with Ok q -> q | Error e -> raise (Parse_error e)
