type value =
  | Nodes of Core.Stree.t list
  | Str of string
  | Num of float
  | Bool of bool
  | Str_list of string list

type fctx = { db : Store.Db.t }
type scoring_fn = fctx -> value list -> float
type pick_fn = fctx -> value list -> Core.Op_pick.criterion
type general_fn = fctx -> value list -> value

type t = {
  scorings : (string, scoring_fn) Hashtbl.t;
  picks : (string, pick_fn) Hashtbl.t;
  generals : (string, general_fn) Hashtbl.t;
}

let to_string_value = function
  | Str s -> s
  | Num f -> Printf.sprintf "%g" f
  | Bool b -> string_of_bool b
  | Nodes ns -> String.concat " " (List.map Core.Stree.all_text ns)
  | Str_list ss -> String.concat " " ss

let to_float = function
  | Num f -> f
  | Str s -> begin
    match float_of_string_opt s with
    | Some f -> f
    | None -> invalid_arg "expected a number"
  end
  | Nodes [ n ] -> Core.Stree.score n
  | Nodes _ -> invalid_arg "expected a single node"
  | Bool b -> if b then 1. else 0.
  | Str_list _ -> invalid_arg "expected a number"

let to_bool = function
  | Bool b -> b
  | Num f -> f <> 0.
  | Str s -> s <> ""
  | Nodes ns -> ns <> []
  | Str_list ss -> ss <> []

let to_terms = function
  | Str_list ss -> ss
  | v -> Ir.Tokenizer.terms (to_string_value v)

let single_node = function
  | Nodes [ n ] -> n
  | Nodes _ -> invalid_arg "expected exactly one node"
  | Str _ | Num _ | Bool _ | Str_list _ -> invalid_arg "expected a node"

(* ------------------------------------------------------------------ *)
(* Built-ins *)

(* a phrase-set argument: each list entry may be a multi-word phrase *)
let phrases_of = function
  | Str_list p -> p
  | (Str _ | Num _ | Bool _ | Nodes _) as v -> [ to_string_value v ]

let score_foo_fn _ctx args =
  match args with
  | [ node; primary; secondary ] ->
    let scorer =
      Core.Scorers.score_foo ~primary:(phrases_of primary)
        ~secondary:(phrases_of secondary) ()
    in
    scorer.Core.Pattern.eval (single_node node)
  | _ -> invalid_arg "ScoreFoo(node, {primary}, {secondary})"

let tfidf_fn ctx args =
  match args with
  | [ node; terms ] ->
    let idx = Store.Db.index ctx.db in
    let scorer =
      Core.Scorers.tfidf
        ~doc_count:(Ir.Inverted_index.document_count idx)
        ~doc_freq:(fun t -> Ir.Inverted_index.doc_freq idx t)
        ~terms:(to_terms terms) ()
    in
    scorer.Core.Pattern.eval (single_node node)
  | _ -> invalid_arg "tfidf(node, {terms})"

let bm25_fn ctx args =
  match args with
  | [ node; terms ] ->
    let idx = Store.Db.index ctx.db in
    let stats = Store.Db.stats ctx.db in
    let avg_size =
      if stats.Store.Db.elements = 0 then 0.
      else
        float_of_int stats.Store.Db.occurrences
        /. float_of_int stats.Store.Db.documents
    in
    let scorer =
      Core.Scorers.bm25
        ~doc_count:(Ir.Inverted_index.document_count idx)
        ~doc_freq:(fun t -> Ir.Inverted_index.doc_freq idx t)
        ~avg_size ~terms:(to_terms terms) ()
    in
    scorer.Core.Pattern.eval (single_node node)
  | _ -> invalid_arg "bm25(node, {terms})"

let score_sim_fn _ctx args =
  match args with
  | [ a; b ] -> Core.Scorers.score_sim (to_string_value a) (to_string_value b)
  | _ -> invalid_arg "ScoreSim(a, b)"

let cosine_fn _ctx args =
  match args with
  | [ a; b ] -> Core.Scorers.cosine_sim (to_string_value a) (to_string_value b)
  | _ -> invalid_arg "CosineSim(a, b)"

let score_bar_fn _ctx args =
  match args with
  | [ a; b ] -> Core.Scorers.score_bar [ to_float a; to_float b ]
  | _ -> invalid_arg "ScoreBar(joinScore, score)"

let pick_foo_fn _ctx args =
  match args with
  | [] -> Core.Op_pick.pick_foo ()
  | [ threshold ] -> Core.Op_pick.pick_foo ~threshold:(to_float threshold) ()
  | [ threshold; fraction ] ->
    Core.Op_pick.pick_foo ~threshold:(to_float threshold)
      ~fraction:(to_float fraction) ()
  | _ -> invalid_arg "PickFoo(threshold?, fraction?)"

let decimal_fn _ctx args =
  match args with
  | [ v ] -> Num (to_float v)
  | _ -> invalid_arg "decimal(v)"

let count_fn _ctx args =
  match args with
  | [ phrase; text ] ->
    (* each entry of a phrase set may be a multi-word phrase *)
    let text = to_string_value text in
    let total =
      List.fold_left
        (fun acc p -> acc + Ir.Phrase.count ~terms:(Ir.Phrase.parse p) text)
        0 (phrases_of phrase)
    in
    Num (float_of_int total)
  | [ v ] -> begin
    match v with
    | Nodes ns -> Num (float_of_int (List.length ns))
    | Str _ | Num _ | Bool _ | Str_list _ -> invalid_arg "count(nodes)"
  end
  | _ -> invalid_arg "count(phrase, text) or count(nodes)"

let count_same_fn _ctx args =
  match args with
  | [ a; b ] ->
    Num
      (float_of_int
         (Ir.Similarity.count_same (to_string_value a) (to_string_value b)))
  | _ -> invalid_arg "count-same(a, b)"

let builtins () =
  let t =
    {
      scorings = Hashtbl.create 16;
      picks = Hashtbl.create 16;
      generals = Hashtbl.create 16;
    }
  in
  let lower = String.lowercase_ascii in
  Hashtbl.replace t.scorings (lower "ScoreFoo") score_foo_fn;
  Hashtbl.replace t.scorings (lower "tfidf") tfidf_fn;
  Hashtbl.replace t.scorings (lower "bm25") bm25_fn;
  Hashtbl.replace t.picks (lower "PickFoo") pick_foo_fn;
  Hashtbl.replace t.generals (lower "ScoreSim")
    (fun ctx args -> Num (score_sim_fn ctx args));
  Hashtbl.replace t.generals (lower "CosineSim")
    (fun ctx args -> Num (cosine_fn ctx args));
  Hashtbl.replace t.generals (lower "ScoreBar")
    (fun ctx args -> Num (score_bar_fn ctx args));
  Hashtbl.replace t.generals (lower "decimal") decimal_fn;
  Hashtbl.replace t.generals (lower "count") count_fn;
  Hashtbl.replace t.generals (lower "count-same") count_same_fn;
  t

let register_scoring t name fn =
  Hashtbl.replace t.scorings (String.lowercase_ascii name) fn

let register_pick t name fn =
  Hashtbl.replace t.picks (String.lowercase_ascii name) fn

let register_general t name fn =
  Hashtbl.replace t.generals (String.lowercase_ascii name) fn

let scoring t name = Hashtbl.find_opt t.scorings (String.lowercase_ascii name)
let pick t name = Hashtbl.find_opt t.picks (String.lowercase_ascii name)
let general t name = Hashtbl.find_opt t.generals (String.lowercase_ascii name)
