type cmp = Eq | Neq | Lt | Le | Gt | Ge

type axis_step =
  | Child of string
  | Descendant of string
  | Self_or_descendant
  | Text
  | Attribute of string

type expr =
  | Document of string
  | Var of string
  | Path of expr * step list
  | String_lit of string
  | Number_lit of float
  | String_set of string list
  | Call of string * expr list
  | Cmp of cmp * expr * expr
  | And of expr * expr
  | Or of expr * expr

and step = { step_axis : axis_step; predicates : pred list }

and pred = Pred_cmp of cmp * expr * expr | Pred_exists of expr

type constructor = Elem_cons of string * (string * expr) list * content list

and content = Const_text of string | Embedded of expr | Nested of constructor

type clause =
  | For of string * expr
  | Let of string * expr
  | Where of expr
  | Score of string * string * expr list
  | Pick of string * string * expr list

type threshold = {
  t_expr : expr;
  t_cmp : cmp;
  t_value : float;
  stop_after : int option;
}

type t = {
  clauses : clause list;
  returns : constructor;
  sortby : string option;
  thresh : threshold option;
}

let cmp_symbol = function
  | Eq -> "="
  | Neq -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let rec pp_expr ppf = function
  | Document d -> Format.fprintf ppf "document(%S)" d
  | Var v -> Format.fprintf ppf "$%s" v
  | Path (base, steps) ->
    pp_expr ppf base;
    List.iter (pp_step ppf) steps
  | String_lit s -> Format.fprintf ppf "%S" s
  | Number_lit n -> Format.fprintf ppf "%g" n
  | String_set ss ->
    Format.fprintf ppf "{%s}" (String.concat ", " (List.map (Printf.sprintf "%S") ss))
  | Call (f, args) ->
    Format.fprintf ppf "%s(%a)" f
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         pp_expr)
      args
  | Cmp (c, a, b) ->
    Format.fprintf ppf "%a %s %a" pp_expr a (cmp_symbol c) pp_expr b
  | And (a, b) -> Format.fprintf ppf "(%a and %a)" pp_expr a pp_expr b
  | Or (a, b) -> Format.fprintf ppf "(%a or %a)" pp_expr a pp_expr b

and pp_step ppf step =
  (match step.step_axis with
  | Child n -> Format.fprintf ppf "/%s" n
  | Descendant n -> Format.fprintf ppf "//%s" n
  | Self_or_descendant -> Format.fprintf ppf "/descendant-or-self::*"
  | Text -> Format.fprintf ppf "/text()"
  | Attribute n -> Format.fprintf ppf "/@%s" n);
  List.iter
    (fun p ->
      match p with
      | Pred_cmp (c, a, b) ->
        Format.fprintf ppf "[%a %s %a]" pp_expr a (cmp_symbol c) pp_expr b
      | Pred_exists e -> Format.fprintf ppf "[%a]" pp_expr e)
    step.predicates

let pp_clause ppf = function
  | For (v, e) -> Format.fprintf ppf "for $%s in %a" v pp_expr e
  | Let (v, e) -> Format.fprintf ppf "let $%s := %a" v pp_expr e
  | Where e -> Format.fprintf ppf "where %a" pp_expr e
  | Score (v, f, args) ->
    Format.fprintf ppf "score $%s using %s(%a)" v f
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         pp_expr)
      args
  | Pick (v, f, args) ->
    Format.fprintf ppf "pick $%s using %s(%a)" v f
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         pp_expr)
      args

let rec pp_constructor ppf (Elem_cons (name, attrs, children)) =
  Format.fprintf ppf "<%s" name;
  List.iter (fun (k, e) -> Format.fprintf ppf " %s={%a}" k pp_expr e) attrs;
  Format.fprintf ppf ">";
  List.iter
    (fun c ->
      match c with
      | Const_text s -> Format.pp_print_string ppf s
      | Embedded e -> Format.fprintf ppf "{%a}" pp_expr e
      | Nested c -> pp_constructor ppf c)
    children;
  Format.fprintf ppf "</%s>" name

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter (fun c -> Format.fprintf ppf "%a@," pp_clause c) t.clauses;
  Format.fprintf ppf "return %a" pp_constructor t.returns;
  (match t.sortby with
  | Some f -> Format.fprintf ppf "@,sortby(%s)" f
  | None -> ());
  (match t.thresh with
  | Some th ->
    Format.fprintf ppf "@,threshold %a %s %g" pp_expr th.t_expr
      (cmp_symbol th.t_cmp) th.t_value;
    (match th.stop_after with
    | Some k -> Format.fprintf ppf " stop after %d" k
    | None -> ())
  | None -> ());
  Format.fprintf ppf "@]"
