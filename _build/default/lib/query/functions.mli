(** The user-function registry of the query engine.

    The paper's Sec. 4 plugs user-defined scoring and picking
    functions into the language; this registry holds the built-ins of
    Fig. 9 (ScoreFoo, ScoreSim, ScoreBar, PickFoo) plus tf·idf, and
    accepts user registrations. *)

type value =
  | Nodes of Core.Stree.t list
  | Str of string
  | Num of float
  | Bool of bool
  | Str_list of string list

type fctx = { db : Store.Db.t }

type scoring_fn = fctx -> value list -> float
(** Applied to the evaluated argument list of a [Score ... using]
    clause (the scored variable's node is the customary first
    argument). *)

type pick_fn = fctx -> value list -> Core.Op_pick.criterion
(** Applied to the argument list of a [Pick ... using] clause with
    the node argument removed. *)

type general_fn = fctx -> value list -> value
(** Ordinary function calls inside expressions. *)

type t

val builtins : unit -> t
(** A fresh registry with ScoreFoo, tfidf, ScoreSim, ScoreBar,
    PickFoo, decimal, count and count-same registered. *)

val register_scoring : t -> string -> scoring_fn -> unit
val register_pick : t -> string -> pick_fn -> unit
val register_general : t -> string -> general_fn -> unit

val scoring : t -> string -> scoring_fn option
val pick : t -> string -> pick_fn option
val general : t -> string -> general_fn option

(** {1 Coercions} *)

val to_float : value -> float
(** Numbers pass through; node values yield their score; strings are
    parsed. Raises [Invalid_argument] otherwise. *)

val to_string_value : value -> string
val to_bool : value -> bool
val to_terms : value -> string list
(** A [Str_list] as is; a string split into terms. *)
