(** Recursive-descent parser for the extended XQuery dialect.

    Grammar (keywords are case-insensitive):
    {v
    query      ::= clause+ "return" constructor sortby? threshold?
    clause     ::= "for" Var "in" expr
                 | "let" Var ":=" expr
                 | "where" expr
                 | "score" Var "using" Ident "(" expr,* ")"
                 | "pick" Var "using" Ident "(" expr,* ")"
    sortby     ::= "sortby" "(" Ident ")"
    threshold  ::= "threshold" expr cmp Number ("stop" "after" Number)?
    expr       ::= primary (cmp primary)?
    primary    ::= ("document" "(" String ")" | Var | Ident "(" expr,* ")"
                 | String | Number | "{" String,* "}") step*
    step       ::= ("/" | "//") (Ident | "text()" | "@" Ident)
                   ("[" pred "]")* | "/descendant-or-self::*"
    pred       ::= relpath (cmp expr)?
    v} *)

type error = { position : int; message : string }

exception Parse_error of error

val parse : string -> (Ast.t, error) result
val parse_exn : string -> Ast.t
val pp_error : Format.formatter -> error -> unit
