(** Abstract syntax of the extended XQuery dialect (Sec. 4).

    The dialect is the FLWR core of the paper's Fig. 10 plus the
    three IR extensions: [Score ... using], [Pick ... using] and
    [Threshold ... stop after k], with [Sortby] for ranking. *)

type cmp = Eq | Neq | Lt | Le | Gt | Ge

type axis_step =
  | Child of string  (** /name *)
  | Descendant of string  (** //name *)
  | Self_or_descendant  (** /descendant-or-self::* *)
  | Text  (** /text() *)
  | Attribute of string  (** /@name *)

type expr =
  | Document of string  (** document("name"), name may contain [*] *)
  | Var of string
  | Path of expr * step list
  | String_lit of string
  | Number_lit of float
  | String_set of string list  (** {"a", "b"} *)
  | Call of string * expr list
  | Cmp of cmp * expr * expr
  | And of expr * expr
  | Or of expr * expr

and step = { step_axis : axis_step; predicates : pred list }

and pred =
  | Pred_cmp of cmp * expr * expr
      (** relative paths inside are rooted at the candidate node *)
  | Pred_exists of expr

type constructor =
  | Elem_cons of string * (string * expr) list * content list
      (** name, attributes, children *)

and content =
  | Const_text of string
  | Embedded of expr  (** { expr } *)
  | Nested of constructor

type clause =
  | For of string * expr
  | Let of string * expr
  | Where of expr
  | Score of string * string * expr list
      (** variable, scoring function name, extra args *)
  | Pick of string * string * expr list

type threshold = {
  t_expr : expr;
  t_cmp : cmp;
  t_value : float;
  stop_after : int option;
}

type t = {
  clauses : clause list;
  returns : constructor;
  sortby : string option;
  thresh : threshold option;
}

val pp_expr : Format.formatter -> expr -> unit
val pp : Format.formatter -> t -> unit
