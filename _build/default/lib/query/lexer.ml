type token =
  | IDENT of string
  | VAR of string
  | STRING of string
  | NUMBER of float
  | LT
  | GT
  | SLASH
  | DSLASH
  | DOS
  | AT
  | COMMA
  | ASSIGN
  | EQ
  | NEQ
  | LE
  | GE
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | EOF

exception Error of { pos : int; message : string }

let fail pos message = raise (Error { pos; message })

let is_ident_start = function
  | 'a' .. 'z' | 'A' .. 'Z' | '_' -> true
  | _ -> false

let is_ident_char c =
  is_ident_start c || match c with '0' .. '9' | '-' | '.' -> true | _ -> false

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let emit pos tok = tokens := (tok, pos) :: !tokens in
  let rec go i =
    if i >= n then emit i EOF
    else begin
      match src.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1)
      | '$' ->
        let j = ref (i + 1) in
        while !j < n && is_ident_char src.[!j] do
          incr j
        done;
        if !j = i + 1 then fail i "expected a variable name after $";
        emit i (VAR (String.sub src (i + 1) (!j - i - 1)));
        go !j
      | '"' | '\'' ->
        let quote = src.[i] in
        let j = ref (i + 1) in
        while !j < n && src.[!j] <> quote do
          incr j
        done;
        if !j >= n then fail i "unterminated string literal";
        emit i (STRING (String.sub src (i + 1) (!j - i - 1)));
        go (!j + 1)
      | '0' .. '9' ->
        let j = ref i in
        while
          !j < n && (match src.[!j] with '0' .. '9' | '.' -> true | _ -> false)
        do
          incr j
        done;
        (match float_of_string_opt (String.sub src i (!j - i)) with
        | Some f -> emit i (NUMBER f)
        | None -> fail i "malformed number");
        go !j
      | '{' ->
        emit i LBRACE;
        go (i + 1)
      | '}' ->
        emit i RBRACE;
        go (i + 1)
      | '(' ->
        emit i LPAREN;
        go (i + 1)
      | ')' ->
        emit i RPAREN;
        go (i + 1)
      | '[' ->
        emit i LBRACKET;
        go (i + 1)
      | ']' ->
        emit i RBRACKET;
        go (i + 1)
      | ',' ->
        emit i COMMA;
        go (i + 1)
      | '@' ->
        emit i AT;
        go (i + 1)
      | ':' when i + 1 < n && src.[i + 1] = '=' ->
        emit i ASSIGN;
        go (i + 2)
      | '=' ->
        emit i EQ;
        go (i + 1)
      | '!' when i + 1 < n && src.[i + 1] = '=' ->
        emit i NEQ;
        go (i + 2)
      | '<' when i + 1 < n && src.[i + 1] = '=' ->
        emit i LE;
        go (i + 2)
      | '>' when i + 1 < n && src.[i + 1] = '=' ->
        emit i GE;
        go (i + 2)
      | '<' ->
        emit i LT;
        go (i + 1)
      | '>' ->
        emit i GT;
        go (i + 1)
      | '/' when i + 1 < n && src.[i + 1] = '/' ->
        emit i DSLASH;
        go (i + 2)
      | '/' ->
        emit i SLASH;
        go (i + 1)
      | c when is_ident_start c ->
        let j = ref i in
        while !j < n && is_ident_char src.[!j] do
          incr j
        done;
        let word = String.sub src i (!j - i) in
        if
          word = "descendant-or-self"
          && !j + 2 < n
          && src.[!j] = ':'
          && src.[!j + 1] = ':'
          && src.[!j + 2] = '*'
        then begin
          emit i DOS;
          go (!j + 3)
        end
        else begin
          emit i (IDENT word);
          go !j
        end
      | '*' ->
        emit i (IDENT "*");
        go (i + 1)
      | c -> fail i (Printf.sprintf "unexpected character %C" c)
    end
  in
  go 0;
  List.rev !tokens

let pp_token ppf = function
  | IDENT s -> Format.fprintf ppf "%s" s
  | VAR v -> Format.fprintf ppf "$%s" v
  | STRING s -> Format.fprintf ppf "%S" s
  | NUMBER f -> Format.fprintf ppf "%g" f
  | LT -> Format.pp_print_string ppf "<"
  | GT -> Format.pp_print_string ppf ">"
  | SLASH -> Format.pp_print_string ppf "/"
  | DSLASH -> Format.pp_print_string ppf "//"
  | DOS -> Format.pp_print_string ppf "descendant-or-self::*"
  | AT -> Format.pp_print_string ppf "@"
  | COMMA -> Format.pp_print_string ppf ","
  | ASSIGN -> Format.pp_print_string ppf ":="
  | EQ -> Format.pp_print_string ppf "="
  | NEQ -> Format.pp_print_string ppf "!="
  | LE -> Format.pp_print_string ppf "<="
  | GE -> Format.pp_print_string ppf ">="
  | LBRACE -> Format.pp_print_string ppf "{"
  | RBRACE -> Format.pp_print_string ppf "}"
  | LPAREN -> Format.pp_print_string ppf "("
  | RPAREN -> Format.pp_print_string ppf ")"
  | LBRACKET -> Format.pp_print_string ppf "["
  | RBRACKET -> Format.pp_print_string ppf "]"
  | EOF -> Format.pp_print_string ppf "<eof>"
