(** Tokenizer for the extended XQuery dialect. *)

type token =
  | IDENT of string
  | VAR of string  (** $name *)
  | STRING of string
  | NUMBER of float
  | LT
  | GT
  | SLASH
  | DSLASH
  | DOS  (** descendant-or-self::* *)
  | AT
  | COMMA
  | ASSIGN  (** := *)
  | EQ
  | NEQ
  | LE
  | GE
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | EOF

exception Error of { pos : int; message : string }

val tokenize : string -> (token * int) list
(** Tokens with their starting offsets; always ends with [EOF].
    Raises {!Error}. *)

val pp_token : Format.formatter -> token -> unit
