lib/query/eval.mli: Ast Core Functions Store Xmlkit
