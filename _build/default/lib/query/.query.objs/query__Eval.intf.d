lib/query/eval.mli: Ast Functions Store Xmlkit
