lib/query/compile.ml: Access Array Ast Core Format Functions Glob Hashtbl Ir List Logs Parser Printf Result Store String
