lib/query/compile.mli: Access Ast Core Functions Store
