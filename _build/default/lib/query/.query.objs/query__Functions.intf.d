lib/query/functions.mli: Core Store
