lib/query/eval.ml: Access Ast Core Format Fun Functions Glob Hashtbl List Option Parser Printf Result Store String Xmlkit
