lib/query/eval.ml: Access Ast Core Format Functions Glob Hashtbl List Option Parser Printf Result Store String Xmlkit
