lib/query/parser.ml: Ast Format Lexer List Printf String
