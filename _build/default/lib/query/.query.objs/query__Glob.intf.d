lib/query/glob.mli:
