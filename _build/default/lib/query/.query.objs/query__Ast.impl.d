lib/query/ast.ml: Format List Printf String
