lib/query/functions.ml: Core Hashtbl Ir List Printf Store String
