lib/query/glob.ml: String
