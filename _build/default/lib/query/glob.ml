let matches pattern name =
  let parts = String.split_on_char '*' pattern in
  match parts with
  | [ exact ] -> exact = name
  | first :: rest ->
    let n = String.length name in
    let starts_with p =
      String.length p <= n && String.sub name 0 (String.length p) = p
    in
    if not (starts_with first) then false
    else begin
      let rec go pos = function
        | [] -> pos = n
        | [ last ] ->
          let l = String.length last in
          l <= n - pos && String.sub name (n - l) l = last
        | part :: rest ->
          let l = String.length part in
          let rec find i =
            if i + l > n then None
            else if String.sub name i l = part then Some (i + l)
            else find (i + 1)
          in
          (match find pos with Some next -> go next rest | None -> false)
      in
      go (String.length first) rest
    end
  | [] -> name = ""
