let of_text ?(width = 24) ~terms text =
  let stems = List.map Ir.Stemmer.stem (List.map String.lowercase_ascii terms) in
  let tokens = Array.of_list (Ir.Tokenizer.tokens text) in
  let n = Array.length tokens in
  if n = 0 then ""
  else begin
    let is_match i =
      List.mem (Ir.Stemmer.stem tokens.(i).Ir.Token.term) stems
    in
    let matches = Array.init n is_match in
    (* best window: most matches, earliest on ties *)
    let width = min width n in
    let count = ref 0 in
    for i = 0 to width - 1 do
      if matches.(i) then incr count
    done;
    let best_start = ref 0 and best_count = ref !count in
    for start = 1 to n - width do
      if matches.(start - 1) then decr count;
      if matches.(start + width - 1) then incr count;
      if !count > !best_count then begin
        best_count := !count;
        best_start := start
      end
    done;
    let buf = Buffer.create 128 in
    if !best_start > 0 then Buffer.add_string buf "... ";
    for i = !best_start to !best_start + width - 1 do
      if i > !best_start then Buffer.add_char buf ' ';
      if matches.(i) then begin
        Buffer.add_char buf '[';
        Buffer.add_string buf tokens.(i).Ir.Token.term;
        Buffer.add_char buf ']'
      end
      else Buffer.add_string buf tokens.(i).Ir.Token.term
    done;
    if !best_start + width < n then Buffer.add_string buf " ...";
    Buffer.contents buf
  end

let of_node ?width ctx ~terms (n : Scored_node.t) =
  let texts =
    Store.Element_store.subtree_texts ctx.Ctx.elements ~doc:n.doc
      ~start:n.start ~end_:n.end_
  in
  of_text ?width ~terms (String.concat " " texts)
