type t = {
  elements : Store.Element_store.t;
  parents : Store.Parent_index.t;
  tags : Store.Tag_index.t;
  index : Ir.Inverted_index.t;
  catalog : Store.Catalog.t;
}

let of_db db =
  {
    elements = Store.Db.elements db;
    parents = Store.Db.parents db;
    tags = Store.Db.tags db;
    index = Store.Db.index db;
    catalog = Store.Db.catalog db;
  }

type nav = Data_access | Parent_index

let node_entry t ~nav ~doc ~start =
  match nav with
  | Parent_index -> Store.Parent_index.find t.parents ~doc ~start
  | Data_access ->
    Option.map
      (fun (r : Store.Element_rec.t) ->
        {
          Store.Parent_index.parent = r.parent;
          child_count = r.child_count;
          level = r.level;
          end_ = r.end_;
          tag = r.tag;
        })
      (Store.Element_store.get t.elements ~doc ~start)

let child_count t ~nav ~doc ~start =
  match node_entry t ~nav ~doc ~start with
  | Some e -> e.Store.Parent_index.child_count
  | None -> 0
