let decoded_postings ctx term =
  match Ir.Inverted_index.lookup ctx.Ctx.index term with
  | None -> []
  | Some p -> Ir.Postings.to_list p

(* All elements of the database, by scanning the table. *)
let all_elements ctx =
  let acc = ref [] in
  Store.Element_store.scan ctx.Ctx.elements (fun r -> acc := r :: !acc);
  List.rev !acc

let term_counts ctx ~terms =
  let k = List.length terms in
  let per_term = List.map (decoded_postings ctx) terms in
  let elements = all_elements ctx in
  List.filter_map
    (fun (r : Store.Element_rec.t) ->
      let counts = Array.make k 0 in
      List.iteri
        (fun i occs ->
          List.iter
            (fun (occ : Ir.Postings.occ) ->
              if occ.doc = r.doc && occ.pos > r.start && occ.pos < r.end_ then
                counts.(i) <- counts.(i) + 1)
            occs)
        per_term;
      if Array.exists (fun c -> c > 0) counts then
        Some ((r.doc, r.start), counts)
      else None)
    elements

let scored ?(mode = Counter_scoring.Simple) ?weights ctx ~terms =
  let k = List.length terms in
  let weights =
    match weights with Some w -> w | None -> Counter_scoring.default_weights k
  in
  let per_term = List.map (decoded_postings ctx) terms in
  let elements = all_elements ctx in
  let with_counts =
    List.filter_map
      (fun (r : Store.Element_rec.t) ->
        let counts = Array.make k 0 in
        let occs = ref [] in
        List.iteri
          (fun i term_occs ->
            List.iter
              (fun (occ : Ir.Postings.occ) ->
                if occ.doc = r.doc && occ.pos > r.start && occ.pos < r.end_
                then begin
                  counts.(i) <- counts.(i) + 1;
                  occs := { Counter_scoring.term = i; pos = occ.pos } :: !occs
                end)
              term_occs)
          per_term;
        if Array.exists (fun c -> c > 0) counts then Some (r, counts, !occs)
        else None)
      elements
  in
  let result_keys =
    List.map (fun ((r : Store.Element_rec.t), _, _) -> (r.doc, r.start)) with_counts
  in
  List.map
    (fun ((r : Store.Element_rec.t), counts, occs) ->
      let score =
        match mode with
        | Counter_scoring.Simple -> Counter_scoring.simple ~weights ~counts
        | Counter_scoring.Complex ->
          let occs =
            List.sort
              (fun (a : Counter_scoring.occ) b -> compare a.pos b.pos)
              occs
          in
          (* non-zero children: direct children of r that are result
             nodes *)
          let nonzero_children =
            List.length
              (List.filter
                 (fun (c : Store.Element_rec.t) ->
                   c.doc = r.doc && c.parent = r.start
                   && List.mem (c.doc, c.start) result_keys)
                 elements)
          in
          Counter_scoring.complex ~weights ~counts ~occs ~nonzero_children
            ~child_count:r.child_count
      in
      {
        Scored_node.doc = r.doc;
        start = r.start;
        end_ = r.end_;
        level = r.level;
        tag = r.tag;
        score;
      })
    with_counts
  |> List.sort Scored_node.compare_pos

let phrase_counts ctx ~phrase =
  match phrase with
  | [] -> []
  | first :: rest ->
    let k = 1 + List.length rest in
    let sets =
      List.map
        (fun term ->
          let tbl = Hashtbl.create 256 in
          List.iter
            (fun (occ : Ir.Postings.occ) ->
              Hashtbl.replace tbl (occ.doc, occ.pos) occ.node)
            (decoded_postings ctx term);
          tbl)
        (first :: rest)
    in
    let lead = List.hd sets and others = List.tl sets in
    let counts = Hashtbl.create 256 in
    Hashtbl.iter
      (fun (doc, pos) node ->
        let ok = ref true in
        List.iteri
          (fun i tbl ->
            if not (Hashtbl.mem tbl (doc, pos + i + 1)) then ok := false)
          others;
        ignore k;
        if !ok then begin
          let key = (doc, node) in
          Hashtbl.replace counts key
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))
        end)
      lead;
    Hashtbl.fold (fun key c acc -> (key, c) :: acc) counts []
    |> List.sort compare
