type mode = Simple | Complex
type occ = { term : int; pos : int }

let default_weights n = Array.make n 1.

let simple ~weights ~counts =
  let acc = ref 0. in
  Array.iteri
    (fun i c -> acc := !acc +. (weights.(i) *. float_of_int c))
    counts;
  !acc

let proximity occs =
  (* adjacent pairs of different terms in position order *)
  let rec go acc = function
    | a :: (b :: _ as rest) ->
      let acc =
        if a.term <> b.term then
          acc +. (1. /. (1. +. float_of_int (b.pos - a.pos)))
        else acc
      in
      go acc rest
    | [ _ ] | [] -> acc
  in
  go 0. occs

let complex ~weights ~counts ~occs ~nonzero_children ~child_count =
  let base = simple ~weights ~counts in
  let bonus = proximity occs in
  let ratio =
    if child_count <= 0 then 1.
    else float_of_int nonzero_children /. float_of_int child_count
  in
  (base +. bonus) *. ratio
