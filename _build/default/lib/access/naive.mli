(** Reference (oracle) implementations, used by the test suite to
    validate every optimized access method on randomly generated
    corpora. They favour obviousness over speed. *)

val term_counts :
  Ctx.t -> terms:string list -> ((int * int) * int array) list
(** For every element containing at least one occurrence of any of
    the terms in its subtree: [((doc, start), counts per term)],
    computed by brute-force interval containment over fully decoded
    posting lists. Sorted by [(doc, start)]. *)

val scored :
  ?mode:Counter_scoring.mode ->
  ?weights:float array ->
  Ctx.t ->
  terms:string list ->
  Scored_node.t list
(** Brute-force equivalent of TermJoin: every ancestor element of any
    occurrence, scored with the same simple or complex function.
    Sorted in document order. *)

val phrase_counts : Ctx.t -> phrase:string list -> ((int * int) * int) list
(** For every text-owning element: the number of phrase occurrences
    in it, computed by decoding postings and checking position
    adjacency directly. Only non-zero entries, sorted. *)
