type t = {
  doc : int;
  start : int;
  end_ : int;
  level : int;
  tag : int;
  score : float;
}

let compare_pos a b =
  match compare a.doc b.doc with 0 -> compare a.start b.start | c -> c

let compare_score_desc a b =
  match compare b.score a.score with 0 -> compare_pos a b | c -> c

let equal a b = compare a b = 0

let pp ppf t =
  Format.fprintf ppf "{doc=%d [%d,%d] lvl=%d tag=%d score=%.4f}" t.doc t.start
    t.end_ t.level t.tag t.score
