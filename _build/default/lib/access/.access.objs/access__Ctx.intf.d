lib/access/ctx.mli: Ir Store
