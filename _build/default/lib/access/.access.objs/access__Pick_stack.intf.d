lib/access/pick_stack.mli: Core
