lib/access/occ_buf.mli: Counter_scoring
