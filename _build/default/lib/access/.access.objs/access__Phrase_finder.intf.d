lib/access/phrase_finder.mli: Ctx Scored_node
