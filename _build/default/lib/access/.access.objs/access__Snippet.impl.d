lib/access/snippet.ml: Array Buffer Ctx Ir List Scored_node Store String
