lib/access/occ_buf.ml: Counter_scoring
