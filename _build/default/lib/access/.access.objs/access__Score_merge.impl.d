lib/access/score_merge.ml: Ctx Ir List Option Scored_node Store
