lib/access/composite.mli: Counter_scoring Ctx Scored_node
