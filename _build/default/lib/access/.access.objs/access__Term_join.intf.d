lib/access/term_join.mli: Counter_scoring Ctx Scored_node
