lib/access/twig_stack.ml: Array Core List Pattern_exec Store
