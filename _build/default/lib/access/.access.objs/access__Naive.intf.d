lib/access/naive.mli: Counter_scoring Ctx Scored_node
