lib/access/score_merge.mli: Ctx Scored_node
