lib/access/path_stack.mli: Core Ctx Store
