lib/access/scored_node.ml: Format
