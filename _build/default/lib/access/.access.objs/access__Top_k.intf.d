lib/access/top_k.mli:
