lib/access/counter_scoring.ml: Array
