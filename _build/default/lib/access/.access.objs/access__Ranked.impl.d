lib/access/ranked.ml: List Scored_node Store Top_k
