lib/access/top_k.ml: Array List
