lib/access/gen_meet.mli: Counter_scoring Ctx Scored_node
