lib/access/pattern_exec.ml: Array Core Ctx Hashtbl Ir List Phrase_finder Scored_node Store String Structural_join Term_join
