lib/access/composite.ml: Array Counter_scoring Ctx Hashtbl Ir List Option Scored_node Store String
