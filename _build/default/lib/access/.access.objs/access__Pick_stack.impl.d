lib/access/pick_stack.ml: Core List
