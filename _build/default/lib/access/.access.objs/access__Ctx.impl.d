lib/access/ctx.ml: Ir Option Store
