lib/access/twig_stack.mli: Core Ctx Store
