lib/access/structural_join.mli: Scored_node
