lib/access/gen_meet.ml: Array Counter_scoring Ctx Hashtbl Ir List Scored_node
