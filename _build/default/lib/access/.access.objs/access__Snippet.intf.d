lib/access/snippet.mli: Ctx Scored_node
