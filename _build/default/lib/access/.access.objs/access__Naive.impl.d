lib/access/naive.ml: Array Counter_scoring Ctx Hashtbl Ir List Option Scored_node Store
