lib/access/pattern_exec.mli: Core Counter_scoring Ctx Scored_node Store
