lib/access/path_stack.ml: Array Core List Option Pattern_exec Store
