lib/access/scored_node.mli: Format
