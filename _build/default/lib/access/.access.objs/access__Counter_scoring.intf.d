lib/access/counter_scoring.mli:
