lib/access/term_join.ml: Array Counter_scoring Ctx Ir List Occ_buf Queue Scored_node Store
