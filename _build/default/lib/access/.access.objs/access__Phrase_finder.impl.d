lib/access/phrase_finder.ml: Ctx Ir List Scored_node Store
