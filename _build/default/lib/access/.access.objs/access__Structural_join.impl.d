lib/access/structural_join.ml: Array List Scored_node
