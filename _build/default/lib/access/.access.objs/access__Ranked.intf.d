lib/access/ranked.mli: Scored_node Store
