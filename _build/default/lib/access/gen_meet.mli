(** Generalized Meet (Sec. 6.1).

    An adaptation of Schmidt et al.'s [meet] operator: for every
    occurrence of every query term, recursively walk the ancestor
    chain upward, grouping term counts per node id in a hash table;
    scores are computed per grouped node at the end. Unlike TermJoin
    there is no stack reuse — every occurrence pays a full
    ancestor-chain walk and per-node hashing — and output requires a
    final pass over the table. Emits all common ancestors, including
    nodes containing only a subset of the terms (with correspondingly
    lower scores), exactly like TermJoin. *)

val run :
  ?mode:Counter_scoring.mode ->
  ?weights:float array ->
  Ctx.t ->
  terms:string list ->
  emit:(Scored_node.t -> unit) ->
  unit ->
  int

val to_list :
  ?mode:Counter_scoring.mode ->
  ?weights:float array ->
  Ctx.t ->
  terms:string list ->
  Scored_node.t list
(** Results in document order. *)
