(** Score-modifying access methods (Sec. 5.2).

    Standard operators extended to use and modify scores:

    {e Scored value join} (Example 5.1) — merge two sets of scored
    witness trees on a join condition; each output's score is
    [f (w1, s_a, w2, s_b)], by default the weighted sum of the two
    input scores. An IR-style condition is a similarity predicate on
    the nodes' content.

    {e Scored set union} (Example 5.2) — a witness belongs to the
    output when it belongs to at least one input; scores combine with
    the weighted sum, where the missing side contributes zero, and a
    combiner may boost witnesses present in both inputs. *)

type combiner = w1:float -> s1:float -> w2:float -> s2:float -> float

val weighted_sum : combiner
(** [w1 *. s1 +. w2 *. s2]. *)

val both_boost : float -> combiner
(** Like {!weighted_sum} but multiplied by the given factor when both
    scores are non-zero — "give more weight to an x that belongs to
    both A and B" (Example 5.2). *)

val value_join :
  ?w1:float ->
  ?w2:float ->
  ?combine:combiner ->
  condition:(Scored_node.t -> Scored_node.t -> bool) ->
  Scored_node.t list ->
  Scored_node.t list ->
  (Scored_node.t * Scored_node.t * float) list
(** All pairs satisfying the condition, with their combined score.
    Weights default to 1. *)

val similarity_condition :
  Ctx.t -> min_sim:float -> Scored_node.t -> Scored_node.t -> bool
(** An IR value-join condition: the two nodes' stored direct text
    reaches the given [count_same] similarity (a data-page access per
    evaluation, like any value predicate). *)

val set_union :
  ?w1:float ->
  ?w2:float ->
  ?combine:combiner ->
  Scored_node.t list ->
  Scored_node.t list ->
  Scored_node.t list
(** Union keyed on node identity [(doc, start)]; both inputs must be
    duplicate-free on that key. Result is in document order with
    combined scores. *)
