(** The two scoring functions of the experimental evaluation
    (Sec. 6.1), computed from per-node term counters.

    {e Simple}: a weighted sum of the occurrences of each query term
    under the node.

    {e Complex}: additionally examines the term distribution — pairs
    of nearby occurrences of {e different} terms earn a proximity
    bonus decaying with their key distance (same-text-node distances
    are word-offset differences; the interval key space makes
    cross-node distances larger automatically, the "multiples of
    node-to-node distance" effect) — and the whole score is
    multiplied by the ratio of non-zero-scored children to total
    children. *)

type mode = Simple | Complex

type occ = { term : int; pos : int }
(** One buffered occurrence: query-term index and word position. *)

val simple : weights:float array -> counts:int array -> float

val complex :
  weights:float array ->
  counts:int array ->
  occs:occ list ->
  nonzero_children:int ->
  child_count:int ->
  float
(** [occs] must be sorted by position. A childless node's ratio
    is 1. *)

val default_weights : int -> float array
(** All-ones weight vector for [n] terms. *)
