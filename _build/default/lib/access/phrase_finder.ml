let run ctx ~phrase ~emit () =
  match phrase with
  | [] -> 0
  | first :: rest ->
    let lead =
      match Ir.Inverted_index.cursor ctx.Ctx.index first with
      | Some c -> c
      | None -> Ir.Postings.cursor (Ir.Postings.of_list [])
    in
    let followers =
      List.map
        (fun term ->
          let cur =
            match Ir.Inverted_index.cursor ctx.Ctx.index term with
            | Some c -> c
            | None -> Ir.Postings.cursor (Ir.Postings.of_list [])
          in
          (cur, ref (Ir.Postings.next cur)))
        rest
    in
    (* count per owning element; the lead cursor is in document
       order, so per-element counts complete before the next element
       appears *)
    let emitted = ref 0 in
    let current : (int * int) option ref = ref None in
    let count = ref 0 in
    let flush () =
      match !current with
      | Some (doc, node) when !count > 0 ->
        (match Ctx.node_entry ctx ~nav:Ctx.Parent_index ~doc ~start:node with
        | Some m ->
          emit
            {
              Scored_node.doc;
              start = node;
              end_ = m.Store.Parent_index.end_;
              level = m.Store.Parent_index.level;
              tag = m.Store.Parent_index.tag;
              score = float_of_int !count;
            };
          incr emitted
        | None -> ())
      | Some _ | None -> ()
    in
    let rec lead_loop () =
      match Ir.Postings.next lead with
      | None -> ()
      | Some occ ->
        (match !current with
        | Some (doc, node)
          when doc = occ.Ir.Postings.doc && node = occ.Ir.Postings.node ->
          ()
        | Some _ | None ->
          flush ();
          current := Some (occ.Ir.Postings.doc, occ.Ir.Postings.node);
          count := 0);
        let hit = ref true in
        List.iteri
          (fun i (cur, head) ->
            let want_pos = occ.Ir.Postings.pos + i + 1 in
            let rec advance () =
              match !head with
              | Some (h : Ir.Postings.occ)
                when h.doc < occ.Ir.Postings.doc
                     || (h.doc = occ.Ir.Postings.doc && h.pos < want_pos) ->
                head := Ir.Postings.next cur;
                advance ()
              | Some _ | None -> ()
            in
            advance ();
            match !head with
            | Some h when h.doc = occ.Ir.Postings.doc && h.pos = want_pos -> ()
            | Some _ | None -> hit := false)
          followers;
        if !hit then incr count;
        lead_loop ()
    in
    lead_loop ();
    flush ();
    !emitted

let to_list ctx ~phrase =
  let acc = ref [] in
  let _ = run ctx ~phrase ~emit:(fun n -> acc := n :: !acc) () in
  List.sort Scored_node.compare_pos !acc

let total_occurrences ctx ~phrase =
  let total = ref 0 in
  let _ =
    run ctx ~phrase
      ~emit:(fun n -> total := !total + int_of_float n.Scored_node.score)
      ()
  in
  !total
