type t =
  | Empty
  | Leaf of Counter_scoring.occ
  | Cat of t * t

let empty = Empty
let singleton occ = Leaf occ

let append a b =
  match a, b with Empty, b -> b | a, Empty -> a | a, b -> Cat (a, b)

let flatten t =
  let rec go acc = function
    | Empty -> acc
    | Leaf occ -> occ :: acc
    | Cat (a, b) -> go (go acc b) a
  in
  go [] t

let is_empty = function Empty -> true | Leaf _ | Cat _ -> false
