(* A closed subtree either already produced its output (an ancestor
   was determined not worth returning, unblocking it), or is pending
   on its ancestors' decisions. [Pending] is only built for eligible
   nodes: candidates worth returning. *)
type block =
  | Resolved
  | Pending of pending

and pending = { p_node : Core.Stree.t; p_children : block list }

type frame = {
  f_node : Core.Stree.t;
  mutable f_remaining : Core.Stree.t list;
  mutable f_blocks : block list;  (* reverse order *)
}

let run (crit : Core.Op_pick.criterion) ~candidates ~emit root =
  let emitted = ref 0 in
  let eligible n = candidates n && crit.worth n in
  let pendings_of blocks =
    List.filter_map (function Resolved -> None | Pending p -> Some p) blocks
  in
  (* Resolve the children of a node whose own returnedness is
     [self_returned]; every pending child is eligible, so it is
     returned exactly when the parent is not. *)
  let rec resolve_children self_returned blocks =
    let pendings = pendings_of blocks in
    let returned_nodes =
      if self_returned then []
      else List.map (fun p -> p.p_node) pendings
    in
    let chosen = crit.sibling_filter returned_nodes in
    List.iter
      (fun p ->
        let ret = not self_returned in
        if ret && List.exists (fun m -> m == p.p_node) chosen then begin
          emit p.p_node;
          incr emitted
        end;
        resolve_children ret p.p_children)
      pendings
  in
  let stack =
    ref
      [
        {
          f_node = root;
          f_remaining = Core.Stree.child_nodes root;
          f_blocks = [];
        };
      ]
  in
  let root_block = ref Resolved in
  let continue = ref true in
  while !continue do
    match !stack with
    | [] -> continue := false
    | top :: rest -> begin
      match top.f_remaining with
      | c :: more ->
        top.f_remaining <- more;
        stack :=
          { f_node = c; f_remaining = Core.Stree.child_nodes c; f_blocks = [] }
          :: top :: rest
      | [] ->
        stack := rest;
        let blocks = List.rev top.f_blocks in
        let block =
          if eligible top.f_node then
            Pending { p_node = top.f_node; p_children = blocks }
          else begin
            (* not worth returning: the subtree's decisions no longer
               depend on anything above — emit now (unblocking) *)
            resolve_children false blocks;
            Resolved
          end
        in
        (match rest with
        | parent :: _ -> parent.f_blocks <- block :: parent.f_blocks
        | [] -> root_block := block)
    end
  done;
  (match !root_block with
  | Pending p ->
    (* the root has no parent and no siblings: returned outright *)
    emit p.p_node;
    incr emitted;
    resolve_children true p.p_children
  | Resolved -> ());
  !emitted

let returned crit ~candidates root =
  let acc = ref [] in
  let _ = run crit ~candidates ~emit:(fun n -> acc := n :: !acc) root in
  List.rev !acc
