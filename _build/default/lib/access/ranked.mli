(** Score-utilizing access methods (Sec. 5.3): thresholding composed
    directly with a score-emitting access method.

    The V-threshold is a score selection applied on the fly; the
    K-threshold uses a bounded {!Top_k} accumulator, so neither
    materializes or sorts the full result. A score {!histogram}
    supports choosing thresholds from the score distribution instead
    of asking the user for an absolute value. *)

type emitter = emit:(Scored_node.t -> unit) -> unit -> int
(** The shape shared by TermJoin, Generalized Meet, PhraseFinder and
    the composites. *)

val top_k : int -> emitter -> Scored_node.t list
(** The K best-scored nodes, best first. *)

val above : float -> emitter -> Scored_node.t list
(** Nodes scoring strictly above the threshold, in document order. *)

val histogram : ?buckets:int -> emitter -> Store.Histogram.t
(** Score distribution of everything the method emits. *)

val top_fraction : q:float -> emitter -> Scored_node.t list
(** Run the method twice: once to build the histogram, once to keep
    nodes above the [q]-quantile score (e.g. [~q:0.9] keeps roughly
    the best decile). Document order. *)
