type item = Store.Tag_index.item

let key (i : item) = (i.doc, i.start)
let end_key (i : item) = (i.doc, i.end_)

let supported (pat : Core.Pattern.t) =
  let rec ok_children (p : Core.Pattern.pnode) =
    List.for_all
      (fun (c : Core.Pattern.pnode) ->
        c.axis = Core.Pattern.Descendant && ok_children c)
      p.children
  in
  ok_children pat.root

(* Per-variable state: candidate stream, stack, matched set. *)
type node_state = {
  var : int;
  parent : int;  (* index into the state array, -1 for the root *)
  children : int list;
  stream : item array;
  mutable cursor : int;
  mutable stack : (item * int) array;
  mutable size : int;
  mutable matched : item list;
}

let head st =
  if st.cursor < Array.length st.stream then Some st.stream.(st.cursor)
  else None

let push_entry st entry =
  if st.size >= Array.length st.stack then begin
    let fresh = Array.make (max 16 (2 * Array.length st.stack)) entry in
    Array.blit st.stack 0 fresh 0 st.size;
    st.stack <- fresh
  end;
  st.stack.(st.size) <- entry;
  st.size <- st.size + 1

let matches ctx (pat : Core.Pattern.t) ~var =
  if not (supported pat) then
    invalid_arg "Twig_stack.matches: not a descendant-axis twig";
  (* flatten the pattern into a state array, preorder *)
  let states = ref [] in
  let count = ref 0 in
  let rec flatten parent (p : Core.Pattern.pnode) =
    let me = !count in
    incr count;
    let children = List.map (flatten me) p.children in
    states :=
      ( me,
        {
          var = p.var;
          parent;
          children;
          stream = Array.of_list (Pattern_exec.candidates ctx p.pred);
          cursor = 0;
          stack = [||];
          size = 0;
          matched = [];
        } )
      :: !states;
    me
  in
  let root = flatten (-1) pat.root in
  let nodes = Array.make !count (snd (List.hd !states)) in
  List.iter (fun (i, st) -> nodes.(i) <- st) !states;
  (* a node's current key, with exhausted streams at infinity (the
     sentinel of the original algorithm) *)
  let infinity_key = (max_int, max_int) in
  let key_of q =
    match head nodes.(q) with Some h -> key h | None -> infinity_key
  in
  (* work remains while some leaf stream still has candidates *)
  let leaves_pending () =
    Array.exists (fun st -> st.children = [] && head st <> None) nodes
  in
  (* getNext (Bruno et al., Fig. 7): the next pattern node whose head
     should be processed; when it returns q with a live head, that
     head has a descendant extension for q's whole subtwig *)
  let rec get_next q =
    let st = nodes.(q) in
    match st.children with
    | [] -> q
    | children ->
      let rec resolve = function
        | [] -> None
        | c :: rest ->
          let n = get_next c in
          (* a headless return means that whole subtree is exhausted:
             no further pushes can come from it, so it is resolved *)
          if n <> c && key_of n <> infinity_key then Some n
          else resolve rest
      in
      (match resolve children with
      | Some deeper -> deeper
      | None ->
        let nmin =
          List.fold_left
            (fun best c -> if key_of c < key_of best then c else best)
            (List.hd children) (List.tl children)
        in
        let nmax =
          List.fold_left
            (fun best c -> if key_of c > key_of best then c else best)
            (List.hd children) (List.tl children)
        in
        (* skip q-heads that cannot contain every child head; an
           exhausted child (infinite key) drains q entirely *)
        let continue = ref true in
        while !continue do
          match head st with
          | Some h when end_key h < key_of nmax -> st.cursor <- st.cursor + 1
          | Some _ | None -> continue := false
        done;
        if key_of q < key_of nmin then q else nmin)
  in
  let clean_stack q (doc, start) =
    let st = nodes.(q) in
    let continue = ref true in
    while !continue && st.size > 0 do
      let top, _ = st.stack.(st.size - 1) in
      if top.doc < doc || (top.doc = doc && top.end_ < start) then
        st.size <- st.size - 1
      else continue := false
    done
  in
  let proper_ptr q (h : item) =
    let parent = nodes.(q).parent in
    if parent < 0 then -1
    else begin
      let ps = nodes.(parent) in
      let i = ps.size - 1 in
      if i >= 0 && (fst ps.stack.(i)).start = h.start && (fst ps.stack.(i)).doc = h.doc
      then i - 1
      else i
    end
  in
  while leaves_pending () do
    let q = get_next root in
    let st = nodes.(q) in
    match head st with
    | None -> () (* every leaf head is infinite; loop condition ends *)
    | Some h ->
      if st.parent >= 0 then clean_stack st.parent (key h);
      let ptr = proper_ptr q h in
      if st.parent < 0 || ptr >= 0 then begin
        clean_stack q (key h);
        (* TwigStack's guarantee: this element participates in a
           complete solution, so it is a match for its variable *)
        st.matched <- h :: st.matched;
        if st.children <> [] then push_entry st (h, ptr)
      end;
      st.cursor <- st.cursor + 1
  done;
  let target =
    Array.to_list nodes |> List.find_opt (fun st -> st.var = var)
  in
  match target with
  | None -> []
  | Some st ->
    List.sort (fun a b -> compare (key a) (key b)) st.matched
