(** Evaluation context shared by all access methods: the element
    table, the parent index and the inverted index of one database. *)

type t = {
  elements : Store.Element_store.t;
  parents : Store.Parent_index.t;
  tags : Store.Tag_index.t;
  index : Ir.Inverted_index.t;
  catalog : Store.Catalog.t;
}

val of_db : Store.Db.t -> t

type nav =
  | Data_access
      (** resolve node facts from data pages (buffer-pool reads):
          what the plain algorithms do *)
  | Parent_index  (** resolve from the in-memory parent index *)

val node_entry : t -> nav:nav -> doc:int -> start:int -> Store.Parent_index.entry option
(** The node's parent, child count, level, end key and tag, resolved
    through the chosen navigation mode. *)

val child_count : t -> nav:nav -> doc:int -> start:int -> int
(** 0 when the node is unknown. *)
