type combiner = w1:float -> s1:float -> w2:float -> s2:float -> float

let weighted_sum ~w1 ~s1 ~w2 ~s2 = (w1 *. s1) +. (w2 *. s2)

let both_boost factor ~w1 ~s1 ~w2 ~s2 =
  let base = weighted_sum ~w1 ~s1 ~w2 ~s2 in
  if s1 <> 0. && s2 <> 0. then base *. factor else base

let value_join ?(w1 = 1.) ?(w2 = 1.) ?(combine = weighted_sum) ~condition
    left right =
  List.concat_map
    (fun (a : Scored_node.t) ->
      List.filter_map
        (fun (b : Scored_node.t) ->
          if condition a b then
            Some (a, b, combine ~w1 ~s1:a.score ~w2 ~s2:b.score)
          else None)
        right)
    left

let similarity_condition ctx ~min_sim (a : Scored_node.t) (b : Scored_node.t) =
  let text (n : Scored_node.t) =
    Option.value ~default:""
      (Store.Element_store.get_text ctx.Ctx.elements ~doc:n.doc ~start:n.start)
  in
  float_of_int (Ir.Similarity.count_same (text a) (text b)) >= min_sim

let set_union ?(w1 = 1.) ?(w2 = 1.) ?(combine = weighted_sum) left right =
  (* merge two document-ordered lists; absent sides contribute a zero
     score *)
  let left = List.sort Scored_node.compare_pos left in
  let right = List.sort Scored_node.compare_pos right in
  let rescore (n : Scored_node.t) score = { n with score } in
  let rec merge l r acc =
    match l, r with
    | [], [] -> List.rev acc
    | (a : Scored_node.t) :: l', [] ->
      merge l' [] (rescore a (combine ~w1 ~s1:a.score ~w2 ~s2:0.) :: acc)
    | [], (b : Scored_node.t) :: r' ->
      merge [] r' (rescore b (combine ~w1 ~s1:0. ~w2 ~s2:b.score) :: acc)
    | a :: l', b :: r' ->
      let c = Scored_node.compare_pos a b in
      if c = 0 then
        merge l' r' (rescore a (combine ~w1 ~s1:a.score ~w2 ~s2:b.score) :: acc)
      else if c < 0 then
        merge l' r (rescore a (combine ~w1 ~s1:a.score ~w2 ~s2:0.) :: acc)
      else merge l r' (rescore b (combine ~w1 ~s1:0. ~w2 ~s2:b.score) :: acc)
  in
  merge left right []
