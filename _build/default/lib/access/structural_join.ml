type item = { doc : int; start : int; end_ : int; level : int }

let item_of_scored (n : Scored_node.t) =
  { doc = n.doc; start = n.start; end_ = n.end_; level = n.level }

let join ?(axis = `Ancestor_descendant) ~ancestors ~descendants ~emit () =
  let emitted = ref 0 in
  let stack = ref [] in
  let na = Array.length ancestors and nd = Array.length descendants in
  let ai = ref 0 and di = ref 0 in
  let key i = (i.doc, i.start) in
  let pop_before (doc, k) =
    let rec go () =
      match !stack with
      | top :: rest when top.doc < doc || (top.doc = doc && top.end_ < k) ->
        stack := rest;
        go ()
      | _ :: _ | [] -> ()
    in
    go ()
  in
  while !ai < na || !di < nd do
    let take_ancestor =
      !ai < na
      && (!di >= nd || key ancestors.(!ai) <= key descendants.(!di))
    in
    if take_ancestor then begin
      let a = ancestors.(!ai) in
      incr ai;
      pop_before (a.doc, a.start);
      stack := a :: !stack
    end
    else begin
      let d = descendants.(!di) in
      incr di;
      pop_before (d.doc, d.start);
      List.iter
        (fun a ->
          let ok =
            a.doc = d.doc && a.start < d.start && d.end_ <= a.end_
            && (axis = `Ancestor_descendant || a.level = d.level - 1)
          in
          if ok then begin
            emit a d;
            incr emitted
          end)
        !stack
    end
  done;
  !emitted

let pairs ?axis ~ancestors ~descendants () =
  let acc = ref [] in
  let _ =
    join ?axis ~ancestors ~descendants ~emit:(fun a d -> acc := (a, d) :: !acc) ()
  in
  List.rev !acc
