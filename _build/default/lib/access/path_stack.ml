type item = Store.Tag_index.item

let chain_of (pat : Core.Pattern.t) =
  let rec go (p : Core.Pattern.pnode) =
    match p.children with
    | [] -> Some [ p ]
    | [ (c : Core.Pattern.pnode) ] when c.axis = Core.Pattern.Descendant ->
      Option.map (fun rest -> p :: rest) (go c)
    | _ -> None
  in
  go pat.root

let supported pat = chain_of pat <> None

(* One stack per chain level. Entries carry a pointer to the top of
   the parent-level stack at push time; every entry at or below that
   index is an ancestor of this one. [watermark] is the highest index
   known to participate in a full root-to-leaf solution. *)
type level = {
  stream : item array;
  mutable cursor : int;
  mutable stack : (item * int) array;  (* (node, parent stack index) *)
  mutable size : int;
  mutable watermark : int;
  mutable results : item list;  (* matched nodes, collected at pop *)
}

let make_level stream =
  {
    stream;
    cursor = 0;
    stack = Array.make 16 ({ Store.Tag_index.doc = 0; start = 0; end_ = 0; level = 0 }, -1);
    size = 0;
    watermark = -1;
    results = [];
  }

let head l = if l.cursor < Array.length l.stream then Some l.stream.(l.cursor) else None

let push l entry =
  if l.size >= Array.length l.stack then begin
    let fresh = Array.make (2 * Array.length l.stack) l.stack.(0) in
    Array.blit l.stack 0 fresh 0 l.size;
    l.stack <- fresh
  end;
  l.stack.(l.size) <- entry;
  l.size <- l.size + 1

(* Pop the top entry; if it is at or below the watermark it belongs to
   a solution: record it and propagate the mark to its ancestors in
   the parent level. *)
let pop (levels : level array) j =
  let l = levels.(j) in
  let idx = l.size - 1 in
  let node, ptr = l.stack.(idx) in
  l.size <- idx;
  if idx <= l.watermark then begin
    l.results <- node :: l.results;
    l.watermark <- idx - 1;
    if j > 0 then
      levels.(j - 1).watermark <- max levels.(j - 1).watermark ptr
  end

let key (i : item) = (i.doc, i.start)

let matches ctx (pat : Core.Pattern.t) ~var =
  let chain =
    match chain_of pat with
    | Some c -> c
    | None -> invalid_arg "Path_stack.matches: not a descendant-axis chain"
  in
  let levels =
    Array.of_list
      (List.map
         (fun (p : Core.Pattern.pnode) ->
           make_level (Array.of_list (Pattern_exec.candidates ctx p.pred)))
         chain)
  in
  let k = Array.length levels in
  let leaf = k - 1 in
  (* Clean every stack of entries that end before the given key.
     Leaf levels first: a child's pop propagates its solution mark to
     the parent level before the parent itself pops. *)
  let clean (doc, start) =
    for j = k - 1 downto 0 do
      let l = levels.(j) in
      let continue = ref true in
      while !continue && l.size > 0 do
        let top, _ = l.stack.(l.size - 1) in
        if top.doc < doc || (top.doc = doc && top.end_ < start) then
          pop levels j
        else continue := false
      done
    done
  in
  let exhausted = ref false in
  while not !exhausted do
    (* the level whose next candidate comes first in document order *)
    let qmin = ref (-1) in
    for j = k - 1 downto 0 do
      match head levels.(j) with
      | Some it -> begin
        match !qmin with
        | -1 -> qmin := j
        | q -> begin
          match head levels.(q) with
          | Some best -> if key it < key best then qmin := j
          | None -> qmin := j
        end
      end
      | None -> ()
    done;
    match !qmin with
    | -1 -> exhausted := true
    | q ->
      let next = Option.get (head levels.(q)) in
      clean (key next);
      (* pointer to the deepest PROPER ancestor candidate: the same
         element can be a candidate at two levels, and it must not
         serve as its own ancestor *)
      let ptr =
        if q = 0 then -1
        else begin
          let l = levels.(q - 1) in
          let i = l.size - 1 in
          if i >= 0 && (fst l.stack.(i)).Store.Tag_index.start = next.Store.Tag_index.start
          then i - 1
          else i
        end
      in
      let parent_open = q = 0 || ptr >= 0 in
      if parent_open then begin
        if q = leaf then begin
          (* a full solution exists: the leaf matches, and so does
             every open ancestor chain entry *)
          levels.(q).results <- next :: levels.(q).results;
          if q > 0 then
            levels.(q - 1).watermark <- max levels.(q - 1).watermark ptr
        end
        else push levels.(q) (next, ptr)
      end;
      levels.(q).cursor <- levels.(q).cursor + 1
  done;
  (* drain: pop everything so pending marks resolve *)
  for j = k - 1 downto 0 do
    while levels.(j).size > 0 do
      pop levels j
    done
  done;
  (* map the requested variable to its chain level *)
  let rec level_of i = function
    | [] -> None
    | (p : Core.Pattern.pnode) :: rest ->
      if p.var = var then Some i else level_of (i + 1) rest
  in
  match level_of 0 chain with
  | None -> []
  | Some j ->
    (* entries can be recorded once per stack episode; nodes are
       pushed at most once, so keys are unique *)
    List.sort (fun a b -> compare (key a) (key b)) levels.(j).results
