(** Result presentation: keyword-in-context snippets.

    Given a scored element and the query terms, reconstruct the
    element's text from the stored pages and extract the window with
    the densest term coverage, highlighting matches — what a search
    front end shows under each ranked hit. *)

val of_text : ?width:int -> terms:string list -> string -> string
(** [of_text ~terms text] is a window of at most [width] tokens
    (default 24) around the best cluster of (stemmed) term matches,
    with matches wrapped in square brackets and ellipses marking
    truncation. The empty string when [text] has no tokens. *)

val of_node :
  ?width:int -> Ctx.t -> terms:string list -> Scored_node.t -> string
(** Snippet for an element, reading its subtree text from the element
    store. *)
