type emitter = emit:(Scored_node.t -> unit) -> unit -> int

let top_k k run =
  let acc = Top_k.create k in
  let _ = run ~emit:(fun n -> Top_k.add acc ~score:n.Scored_node.score n) () in
  List.map snd (Top_k.to_sorted_list acc)

let above v run =
  let acc = ref [] in
  let _ =
    run ~emit:(fun n -> if n.Scored_node.score > v then acc := n :: !acc) ()
  in
  List.sort Scored_node.compare_pos !acc

let histogram ?buckets run =
  let scores = ref [] in
  let _ = run ~emit:(fun n -> scores := n.Scored_node.score :: !scores) () in
  Store.Histogram.of_values ?buckets !scores

let top_fraction ~q run =
  let h = histogram run in
  let cut = Store.Histogram.quantile h q in
  above cut run
