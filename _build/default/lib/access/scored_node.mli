(** Scored element identifiers: what score-generating access methods
    emit. *)

type t = {
  doc : int;
  start : int;
  end_ : int;
  level : int;
  tag : int;
  score : float;
}

val compare_pos : t -> t -> int
(** Document order: by [(doc, start)]. *)

val compare_score_desc : t -> t -> int
(** Best score first; ties in document order. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
