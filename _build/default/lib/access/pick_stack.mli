(** The stack-based Pick algorithm (Fig. 12).

    A single pass over a scored data tree decides, for every
    candidate data IR-node, whether it is worth returning and not
    made redundant by a returned parent. Because a node's own worth
    depends only on its children's (already known) scores but its
    {e returnedness} also depends on its ancestors', output blocks
    until an ancestor is determined not worth returning — at which
    point its whole subtree's decisions resolve and are emitted
    (the blocking behaviour the paper describes). The result set is
    identical to the reference implementation [Core.Op_pick.returned];
    property tests enforce this. *)

val run :
  Core.Op_pick.criterion ->
  candidates:(Core.Stree.t -> bool) ->
  emit:(Core.Stree.t -> unit) ->
  Core.Stree.t ->
  int
(** Returns the number of emitted nodes. *)

val returned :
  Core.Op_pick.criterion ->
  candidates:(Core.Stree.t -> bool) ->
  Core.Stree.t ->
  Core.Stree.t list
(** Collected results in emission order. *)
