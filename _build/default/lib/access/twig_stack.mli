(** The TwigStack holistic twig join (Bruno, Koudas & Srivastava,
    SIGMOD 2002 — reference [6] of the paper, "holistic twig joins:
    optimal XML pattern matching").

    Generalizes {!Path_stack} from chains to branching patterns
    ({e twigs}): the whole descendant-axis pattern is evaluated in
    one coordinated pass over the per-variable candidate streams.
    The [getNext] discipline only pushes elements that provably
    participate in a complete twig solution — for descendant-only
    twigs no intermediate result contains useless elements, which is
    the optimality result of that paper.

    Scope: patterns whose non-root edges are all the [Descendant]
    axis. Property-tested to agree exactly with
    {!Pattern_exec.matches}. *)

val supported : Core.Pattern.t -> bool

val matches : Ctx.t -> Core.Pattern.t -> var:int -> Store.Tag_index.item list
(** Elements the variable binds to in some twig embedding, in
    document order. Raises [Invalid_argument] when the pattern is
    not {!supported}. *)
