(** Catenable occurrence buffers: the "buffer and list" kept per
    stack entry for complex scoring (Fig. 11, the [if (!s)]
    sections). Appending a child's buffer to its parent's is O(1);
    flattening yields occurrences in position order provided appends
    happened in document order. *)

type t

val empty : t
val singleton : Counter_scoring.occ -> t
val append : t -> t -> t
val flatten : t -> Counter_scoring.occ list
val is_empty : t -> bool
