(** The PathStack holistic path join (Bruno, Koudas & Srivastava,
    SIGMOD 2002 — reference [6] of the paper).

    Where {!Pattern_exec} evaluates a pattern with a sequence of
    binary structural semi-joins (materializing an intermediate
    candidate list per step), PathStack evaluates a whole
    descendant-axis {e chain} — [//a//b//c] — in a single merge pass
    over the per-level candidate streams, with one stack per level
    linked by parent pointers. No intermediate join result is ever
    materialized, which is the "holistic" advantage.

    Scope: root-to-leaf chains whose non-root edges are all the
    [Descendant] axis (the classic PathStack setting). Use
    {!supported} to test applicability and fall back to
    {!Pattern_exec} otherwise. *)

val supported : Core.Pattern.t -> bool
(** The pattern is a chain and every non-root edge is [Descendant]. *)

val matches : Ctx.t -> Core.Pattern.t -> var:int -> Store.Tag_index.item list
(** Elements the variable binds to in some chain embedding, in
    document order; agrees exactly with [Pattern_exec.matches] on
    supported patterns (property-tested). Raises [Invalid_argument]
    when the pattern is not {!supported}. *)
