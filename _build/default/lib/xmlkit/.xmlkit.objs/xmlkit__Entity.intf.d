lib/xmlkit/entity.mli:
