lib/xmlkit/parser.ml: Char Entity Format Fun List Printf String Tree
