lib/xmlkit/tree.ml: Buffer Format List String
