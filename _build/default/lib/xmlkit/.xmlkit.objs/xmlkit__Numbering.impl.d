lib/xmlkit/numbering.ml: Array List String Tree
