lib/xmlkit/parser.mli: Format Tree
