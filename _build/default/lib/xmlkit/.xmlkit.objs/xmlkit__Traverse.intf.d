lib/xmlkit/traverse.mli: Seq Tree
