lib/xmlkit/printer.ml: Buffer Entity List String Tree
