lib/xmlkit/numbering.mli: Tree
