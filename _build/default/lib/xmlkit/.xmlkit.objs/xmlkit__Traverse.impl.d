lib/xmlkit/traverse.ml: List Seq Tree
