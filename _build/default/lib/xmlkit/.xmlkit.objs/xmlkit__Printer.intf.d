lib/xmlkit/printer.mli: Tree
