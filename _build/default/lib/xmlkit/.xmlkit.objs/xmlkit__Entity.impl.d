lib/xmlkit/entity.ml: Buffer Char String
