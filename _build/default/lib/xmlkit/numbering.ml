type info = {
  index : int;
  start : int;
  end_ : int;
  level : int;
  parent : int;
  child_count : int;
  tag : string;
}

type t = {
  infos : info array;
  elements : Tree.element array;
  max_key : int;
}

let default_word_count s =
  let n = String.length s in
  let count = ref 0 and in_word = ref false in
  for i = 0 to n - 1 do
    let is_sep =
      match s.[i] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    in
    if is_sep then in_word := false
    else if not !in_word then begin
      in_word := true;
      incr count
    end
  done;
  !count

let number
    ?(text = fun ~owner:_ ~owner_start:_ ~start_key:_ s -> default_word_count s)
    root =
  let size = Tree.size root in
  let infos = Array.make size None in
  let elements = Array.make size root in
  let key = ref 0 in
  let next_index = ref 0 in
  let fresh_key () =
    let k = !key in
    incr key;
    k
  in
  let rec go level parent (e : Tree.element) =
    let index = !next_index in
    incr next_index;
    elements.(index) <- e;
    let start = fresh_key () in
    let child_count = ref 0 in
    List.iter
      (fun n ->
        match n with
        | Tree.Element c ->
          incr child_count;
          go (level + 1) index c
        | Tree.Text s ->
          key := !key + text ~owner:index ~owner_start:start ~start_key:!key s
        | Tree.Comment _ | Tree.Pi _ -> ())
      e.children;
    let end_ = fresh_key () in
    infos.(index) <-
      Some
        {
          index;
          start;
          end_;
          level;
          parent;
          child_count = !child_count;
          tag = e.tag;
        }
  in
  go 0 (-1) root;
  let infos =
    Array.map
      (function Some i -> i | None -> assert false (* all slots filled *))
      infos
  in
  { infos; elements; max_key = !key - 1 }

let contains a b = a.start < b.start && b.end_ < a.end_

let find_by_start t start =
  (* infos are in preorder, hence sorted by start key *)
  let lo = ref 0 and hi = ref (Array.length t.infos - 1) in
  let found = ref None in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let info = t.infos.(mid) in
    if info.start = start then begin
      found := Some info;
      lo := !hi + 1
    end
    else if info.start < start then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let enclosing t key =
  if key < 0 || key > t.max_key then None
  else begin
    (* Find the last element with start <= key, then walk up until the
       interval covers the key. *)
    let lo = ref 0 and hi = ref (Array.length t.infos - 1) in
    let candidate = ref (-1) in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      if t.infos.(mid).start <= key then begin
        candidate := mid;
        lo := mid + 1
      end
      else hi := mid - 1
    done;
    let rec up i =
      if i < 0 then None
      else
        let info = t.infos.(i) in
        if info.start <= key && key <= info.end_ then Some info
        else up info.parent
    in
    up !candidate
  end

let ancestors t info =
  let rec go acc parent =
    if parent < 0 then List.rev acc
    else
      let p = t.infos.(parent) in
      go (p :: acc) p.parent
  in
  go [] info.parent
