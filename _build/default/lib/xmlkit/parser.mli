(** A recursive-descent XML parser.

    Supports elements, attributes (single or double quoted), text,
    the five predefined entities plus numeric character references,
    comments, processing instructions, CDATA sections, an XML
    declaration and a (skipped) DOCTYPE. Namespaces are treated as
    plain prefixed names. This covers the INEX-style corpora the TIX
    system manages. *)

type error = { line : int; col : int; message : string }

exception Parse_error of error

val pp_error : Format.formatter -> error -> unit

val parse_string : string -> (Tree.element, error) result
(** [parse_string s] parses a complete XML document and returns its
    root element. *)

val parse_string_exn : string -> Tree.element
(** Like {!parse_string} but raises {!Parse_error}. *)

val parse_fragment : string -> (Tree.node list, error) result
(** [parse_fragment s] parses a sequence of top-level nodes, e.g. a
    file holding several documents concatenated (as [reviews.xml] in
    the paper's Figure 1). *)

val parse_file : string -> (Tree.element, error) result
(** [parse_file path] reads and parses the file at [path]. *)
