let add_attrs buf attrs =
  List.iter
    (fun (a : Tree.attr) ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf a.name;
      Buffer.add_string buf "=\"";
      Buffer.add_string buf (Entity.escape_attr a.value);
      Buffer.add_char buf '"')
    attrs

let rec add_compact buf (e : Tree.element) =
  Buffer.add_char buf '<';
  Buffer.add_string buf e.tag;
  add_attrs buf e.attrs;
  if e.children = [] then Buffer.add_string buf "/>"
  else begin
    Buffer.add_char buf '>';
    List.iter (add_node buf) e.children;
    Buffer.add_string buf "</";
    Buffer.add_string buf e.tag;
    Buffer.add_char buf '>'
  end

and add_node buf = function
  | Tree.Element e -> add_compact buf e
  | Tree.Text s -> Buffer.add_string buf (Entity.escape_text s)
  | Tree.Comment s ->
    Buffer.add_string buf "<!--";
    Buffer.add_string buf s;
    Buffer.add_string buf "-->"
  | Tree.Pi { target; data } ->
    Buffer.add_string buf "<?";
    Buffer.add_string buf target;
    Buffer.add_char buf ' ';
    Buffer.add_string buf data;
    Buffer.add_string buf "?>"

let has_element_child (e : Tree.element) =
  List.exists
    (function
      | Tree.Element _ -> true
      | Tree.Text _ | Tree.Comment _ | Tree.Pi _ -> false)
    e.children

let rec add_pretty buf step level (e : Tree.element) =
  let pad n = Buffer.add_string buf (String.make (n * step) ' ') in
  pad level;
  Buffer.add_char buf '<';
  Buffer.add_string buf e.tag;
  add_attrs buf e.attrs;
  if e.children = [] then Buffer.add_string buf "/>\n"
  else if not (has_element_child e) then begin
    (* Leaf-ish element: keep text inline. *)
    Buffer.add_char buf '>';
    List.iter (add_node buf) e.children;
    Buffer.add_string buf "</";
    Buffer.add_string buf e.tag;
    Buffer.add_string buf ">\n"
  end
  else begin
    Buffer.add_string buf ">\n";
    List.iter
      (fun n ->
        match n with
        | Tree.Element c -> add_pretty buf step (level + 1) c
        | Tree.Text s ->
          let s = String.trim s in
          if s <> "" then begin
            pad (level + 1);
            Buffer.add_string buf (Entity.escape_text s);
            Buffer.add_char buf '\n'
          end
        | Tree.Comment _ | Tree.Pi _ ->
          pad (level + 1);
          add_node buf n;
          Buffer.add_char buf '\n')
      e.children;
    pad level;
    Buffer.add_string buf "</";
    Buffer.add_string buf e.tag;
    Buffer.add_string buf ">\n"
  end

let to_string ?indent e =
  let buf = Buffer.create 1024 in
  (match indent with
  | None -> add_compact buf e
  | Some step -> add_pretty buf step 0 e);
  Buffer.contents buf

let node_to_string n =
  let buf = Buffer.create 256 in
  add_node buf n;
  Buffer.contents buf

let to_channel oc e =
  let buf = Buffer.create 65536 in
  add_compact buf e;
  Buffer.output_buffer oc buf
