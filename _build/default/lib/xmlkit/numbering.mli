(** Interval encoding of document trees.

    Every element receives a [(start, end_, level)] triple such that
    element [a] is an ancestor of element [b] iff
    [a.start < b.start && b.end_ < a.end_]. Word positions in text
    content consume key values too, so a term occurrence at word
    position [p] lies inside exactly the intervals of its ancestor
    elements. This is the node identity scheme used by the
    stack-based join family (Sec. 5.1 of the paper). *)

type info = {
  index : int;  (** preorder index of the element, root is 0 *)
  start : int;  (** start key *)
  end_ : int;  (** end key; [start < end_] *)
  level : int;  (** depth; root is 0 *)
  parent : int;  (** preorder index of the parent, [-1] for the root *)
  child_count : int;  (** number of element children *)
  tag : string;
}

type t = {
  infos : info array;  (** indexed by preorder index *)
  elements : Tree.element array;  (** the element at each index *)
  max_key : int;  (** all keys are in [0, max_key] *)
}

val number :
  ?text:(owner:int -> owner_start:int -> start_key:int -> string -> int) ->
  Tree.element ->
  t
(** [number root] assigns interval keys in a single preorder pass.

    [text ~owner ~owner_start ~start_key s] is called for every text
    node; [owner] is the preorder index of the owning element,
    [owner_start] its start key, and [start_key] the first key slot
    available to the text. It returns the number of key slots the
    text consumes, so word positions and element intervals share one
    key space. The default counts whitespace-separated words. *)

val contains : info -> info -> bool
(** [contains a b] is true iff [a] is a proper ancestor of [b]. *)

val find_by_start : t -> int -> info option
(** Look up an element by its start key (binary search). *)

val enclosing : t -> int -> info option
(** [enclosing t key] is the deepest element whose interval contains
    key position [key]. *)

val ancestors : t -> info -> info list
(** Ancestors of an element, nearest first. *)
