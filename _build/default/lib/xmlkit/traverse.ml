let preorder root =
  let rec seq stack () =
    match stack with
    | [] -> Seq.Nil
    | e :: rest ->
      let children = Tree.child_elements e in
      Seq.Cons (e, seq (children @ rest))
  in
  seq [ root ]

let find_all tag root =
  Seq.fold_left
    (fun acc e -> if e.Tree.tag = tag then e :: acc else acc)
    [] (preorder root)
  |> List.rev

let find_first tag root =
  Seq.find (fun e -> e.Tree.tag = tag) (preorder root)

let path steps root =
  let step frontier tag =
    List.concat_map
      (fun e ->
        List.filter (fun c -> c.Tree.tag = tag) (Tree.child_elements e))
      frontier
  in
  List.fold_left step [ root ] steps

let parent_map root =
  (* Physical identity: every element value in a parsed tree is a
     distinct heap block, so == discriminates nodes. *)
  let pairs = ref [] in
  Tree.iter
    (fun e ->
      List.iter (fun c -> pairs := (c, e) :: !pairs) (Tree.child_elements e))
    root;
  let table = !pairs in
  fun e -> List.find_map (fun (c, p) -> if c == e then Some p else None) table
