(** XML serialization. *)

val to_string : ?indent:int -> Tree.element -> string
(** [to_string e] serializes [e]. With [~indent:n], elements are
    pretty-printed with [n]-space indentation steps; text content is
    emitted verbatim (no reformatting), so pretty printing is only
    whitespace-safe for data-oriented documents. *)

val node_to_string : Tree.node -> string

val to_channel : out_channel -> Tree.element -> unit
(** Compact serialization straight to a channel (used when writing
    generated corpora to disk). *)
