let escape_gen ~quote s =
  let needs_escape = function
    | '&' | '<' | '>' -> true
    | '"' -> quote
    | _ -> false
  in
  if not (String.exists needs_escape s) then s
  else begin
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '&' -> Buffer.add_string buf "&amp;"
        | '<' -> Buffer.add_string buf "&lt;"
        | '>' -> Buffer.add_string buf "&gt;"
        | '"' when quote -> Buffer.add_string buf "&quot;"
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf
  end

let escape_text s = escape_gen ~quote:false s
let escape_attr s = escape_gen ~quote:true s

(* Encode a Unicode code point as UTF-8 into [buf]. *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let decode_ref buf name =
  match name with
  | "amp" -> Buffer.add_char buf '&'
  | "lt" -> Buffer.add_char buf '<'
  | "gt" -> Buffer.add_char buf '>'
  | "quot" -> Buffer.add_char buf '"'
  | "apos" -> Buffer.add_char buf '\''
  | _ ->
    if String.length name > 1 && name.[0] = '#' then begin
      let cp =
        if name.[1] = 'x' || name.[1] = 'X' then
          int_of_string_opt ("0x" ^ String.sub name 2 (String.length name - 2))
        else int_of_string_opt (String.sub name 1 (String.length name - 1))
      in
      match cp with
      | Some cp when cp >= 0 && cp <= 0x10FFFF -> add_utf8 buf cp
      | Some _ | None ->
        Buffer.add_char buf '&';
        Buffer.add_string buf name;
        Buffer.add_char buf ';'
    end
    else begin
      Buffer.add_char buf '&';
      Buffer.add_string buf name;
      Buffer.add_char buf ';'
    end

let decode s =
  if not (String.contains s '&') then s
  else begin
    let buf = Buffer.create (String.length s) in
    let n = String.length s in
    let rec loop i =
      if i >= n then ()
      else if s.[i] = '&' then begin
        match String.index_from_opt s i ';' with
        | Some j when j - i - 1 > 0 && j - i - 1 <= 10 ->
          decode_ref buf (String.sub s (i + 1) (j - i - 1));
          loop (j + 1)
        | Some _ | None ->
          Buffer.add_char buf '&';
          loop (i + 1)
      end
      else begin
        Buffer.add_char buf s.[i];
        loop (i + 1)
      end
    in
    loop 0;
    Buffer.contents buf
  end
