(** Ordered labeled trees: the XML data model of the TIX paper.

    An XML document is modeled as a rooted ordered tree whose nodes
    are elements carrying a tag and attributes; leaves may also be
    text, comment or processing-instruction nodes (Sec. 3 of the
    paper). *)

type attr = { name : string; value : string }

type element = {
  tag : string;
  attrs : attr list;
  children : node list;
}

and node =
  | Element of element
  | Text of string
  | Comment of string
  | Pi of { target : string; data : string }

val elem : ?attrs:(string * string) list -> string -> node list -> element
(** [elem tag children] builds an element node. *)

val el : ?attrs:(string * string) list -> string -> node list -> node
(** Like {!elem} but wrapped as a {!node}. *)

val text : string -> node
(** [text s] builds a text node. *)

val attr : element -> string -> string option
(** [attr e name] is the value of attribute [name] on [e], if any. *)

val child_elements : element -> element list
(** Element children of [e], in document order. *)

val child_texts : element -> string list
(** Direct text children of [e], in document order. *)

val local_text : element -> string
(** Concatenation of the direct text children of [e]. *)

val all_text : element -> string
(** Concatenation of all descendant text of [e] in document order,
    separated by single spaces: the [alltext()] function of Fig. 9. *)

val descendant_elements : element -> element list
(** All proper descendant elements of [e] in document order. *)

val self_or_descendants : element -> element list
(** [e] followed by all its descendant elements: the [ad*]
    relationship of scored pattern trees. *)

val size : element -> int
(** Number of element nodes in the subtree rooted at [e]
    (including [e]). *)

val depth : element -> int
(** Height of the subtree rooted at [e]; a leaf element has
    depth 1. *)

val equal : element -> element -> bool
(** Structural equality ignoring comments and PIs. *)

val equal_node : node -> node -> bool

val fold : ('a -> element -> 'a) -> 'a -> element -> 'a
(** Preorder fold over the element nodes of the subtree. *)

val iter : (element -> unit) -> element -> unit
(** Preorder iteration over the element nodes of the subtree. *)

val pp : Format.formatter -> element -> unit
(** Compact single-line rendering, for debugging and tests. *)

val pp_node : Format.formatter -> node -> unit
