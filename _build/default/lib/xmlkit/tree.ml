type attr = { name : string; value : string }

type element = {
  tag : string;
  attrs : attr list;
  children : node list;
}

and node =
  | Element of element
  | Text of string
  | Comment of string
  | Pi of { target : string; data : string }

let elem ?(attrs = []) tag children =
  let attrs = List.map (fun (name, value) -> { name; value }) attrs in
  { tag; attrs; children }

let el ?attrs tag children = Element (elem ?attrs tag children)
let text s = Text s

let attr e name =
  List.find_map (fun a -> if a.name = name then Some a.value else None) e.attrs

let child_elements e =
  List.filter_map
    (function Element c -> Some c | Text _ | Comment _ | Pi _ -> None)
    e.children

let child_texts e =
  List.filter_map
    (function Text s -> Some s | Element _ | Comment _ | Pi _ -> None)
    e.children

let local_text e = String.concat "" (child_texts e)

let all_text e =
  let buf = Buffer.create 64 in
  let rec go e =
    List.iter
      (fun n ->
        match n with
        | Text s ->
          if Buffer.length buf > 0 then Buffer.add_char buf ' ';
          Buffer.add_string buf s
        | Element c -> go c
        | Comment _ | Pi _ -> ())
      e.children
  in
  go e;
  Buffer.contents buf

let rec descendants_acc acc e =
  List.fold_left
    (fun acc n ->
      match n with
      | Element c -> descendants_acc (c :: acc) c
      | Text _ | Comment _ | Pi _ -> acc)
    acc e.children

let descendant_elements e = List.rev (descendants_acc [] e)
let self_or_descendants e = e :: descendant_elements e

let rec size e =
  List.fold_left
    (fun acc n ->
      match n with
      | Element c -> acc + size c
      | Text _ | Comment _ | Pi _ -> acc)
    1 e.children

let rec depth e =
  1
  + List.fold_left
      (fun acc n ->
        match n with
        | Element c -> max acc (depth c)
        | Text _ | Comment _ | Pi _ -> acc)
      0 e.children

let rec equal a b =
  a.tag = b.tag
  && List.length a.attrs = List.length b.attrs
  && List.for_all2 (fun x y -> x.name = y.name && x.value = y.value) a.attrs
       b.attrs
  && equal_children a.children b.children

and equal_children a b =
  (* Comments and PIs are not semantically significant. *)
  let significant = function
    | Element _ | Text _ -> true
    | Comment _ | Pi _ -> false
  in
  let a = List.filter significant a and b = List.filter significant b in
  List.length a = List.length b && List.for_all2 equal_node a b

and equal_node a b =
  match a, b with
  | Element x, Element y -> equal x y
  | Text x, Text y -> x = y
  | Comment x, Comment y -> x = y
  | Pi x, Pi y -> x.target = y.target && x.data = y.data
  | (Element _ | Text _ | Comment _ | Pi _), _ -> false

let fold f init e =
  let rec go acc e =
    let acc = f acc e in
    List.fold_left
      (fun acc n ->
        match n with
        | Element c -> go acc c
        | Text _ | Comment _ | Pi _ -> acc)
      acc e.children
  in
  go init e

let iter f e = fold (fun () e -> f e) () e

let rec pp ppf e =
  Format.fprintf ppf "@[<hv 2><%s%a>" e.tag pp_attrs e.attrs;
  List.iter (fun n -> Format.fprintf ppf "%a" pp_node n) e.children;
  Format.fprintf ppf "</%s>@]" e.tag

and pp_attrs ppf attrs =
  List.iter (fun a -> Format.fprintf ppf " %s=%S" a.name a.value) attrs

and pp_node ppf = function
  | Element e -> pp ppf e
  | Text s -> Format.pp_print_string ppf s
  | Comment s -> Format.fprintf ppf "<!--%s-->" s
  | Pi { target; data } -> Format.fprintf ppf "<?%s %s?>" target data
