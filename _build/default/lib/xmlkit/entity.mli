(** Predefined XML entities and character references.

    Only the five predefined entities ([&amp;], [&lt;], [&gt;],
    [&quot;], [&apos;]) and numeric character references are
    supported, which matches the needs of the corpus this system
    manages. *)

val escape_text : string -> string
(** [escape_text s] escapes [&], [<] and [>] for use in text
    content. *)

val escape_attr : string -> string
(** [escape_attr s] escapes ampersand, angle brackets and the double
    quote for use in a double-quoted attribute value. *)

val decode : string -> string
(** [decode s] replaces entity and character references by their
    character values. Unknown entity references are left intact. *)
