(** Simple tree navigation helpers used by tests, examples and the
    query front end. *)

val preorder : Tree.element -> Tree.element Seq.t
(** All elements of the subtree in document order, starting with the
    root itself. *)

val find_all : string -> Tree.element -> Tree.element list
(** [find_all tag root] is every element of the subtree (including
    the root) whose tag is [tag], in document order. *)

val find_first : string -> Tree.element -> Tree.element option

val path : string list -> Tree.element -> Tree.element list
(** [path [t1; t2; ...] root] follows child steps: the [t1] children
    of [root], then their [t2] children, and so on. *)

val parent_map : Tree.element -> (Tree.element -> Tree.element option)
(** [parent_map root] precomputes a physical-identity parent lookup
    for every element of the tree. *)
