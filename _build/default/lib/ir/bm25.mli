(** Okapi BM25 term weighting.

    The paper leaves the scoring function pluggable ("we would expect
    the scoring function to be quite complex ... a tf*idf computation,
    taking into consideration the element size"); BM25 is the
    standard such function, with saturating term frequency and
    element-length normalization. *)

val idf : doc_count:int -> doc_freq:int -> float
(** The BM25 idf: [log (1 + (N - df + 0.5) / (df + 0.5))]; always
    non-negative. *)

val score :
  ?k1:float ->
  ?b:float ->
  doc_count:int ->
  doc_freq:int ->
  count:int ->
  element_size:int ->
  avg_size:float ->
  unit ->
  float
(** One term's contribution for an element containing it [count]
    times with [element_size] tokens, given the collection's
    [avg_size]. Defaults: [k1 = 1.2], [b = 0.75]. *)
