(** Word tokenizer with positional output.

    A token is a maximal run of ASCII letters and digits, lower-cased.
    Word positions number tokens consecutively from a caller-supplied
    origin, so positions are comparable across the text nodes of one
    document — the basis for phrase matching in {e PhraseFinder} and
    for the term-distance component of the complex scoring function
    (Sec. 6.1). *)

val fold : ?start_pos:int -> (acc:'a -> Token.t -> 'a) -> 'a -> string -> 'a
(** [fold f init s] folds [f] over the tokens of [s] in order. *)

val tokens : ?start_pos:int -> string -> Token.t list
(** All tokens of [s] in order. *)

val count : string -> int
(** Number of tokens in [s]; [count s = List.length (tokens s)] but
    without allocation. *)

val terms : string -> string list
(** Just the lower-cased terms, in order. *)
