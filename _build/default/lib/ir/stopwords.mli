(** A standard English stopword list.

    Stopword removal is optional throughout the system (the paper's
    experiments select terms by frequency, which requires indexing
    everything), but the query front end uses it when building
    term-preference queries from free text. *)

val is_stopword : string -> bool
(** [is_stopword w] expects [w] lower-cased. *)

val all : string list
