(** Byte-level integer codecs used by the compressed posting lists
    and the slotted storage pages. *)

val add_varint : Buffer.t -> int -> unit
(** LEB128 encoding of a non-negative integer. *)

val add_zigzag : Buffer.t -> int -> unit
(** Zigzag-then-varint encoding of a signed integer. *)

val read_varint : Bytes.t -> int -> int * int
(** [read_varint b off] is [(value, next_off)]. *)

val read_zigzag : Bytes.t -> int -> int * int

val varint_size : int -> int
(** Encoded size in bytes of a non-negative integer. *)
