(** The Porter stemming algorithm (Porter, 1980).

    Used to conflate morphological variants when the query front end
    matches query terms against indexed terms. The index can be built
    stemmed or unstemmed; the paper's experiments use raw term
    frequencies, which corresponds to the unstemmed configuration. *)

val stem : string -> string
(** [stem w] expects [w] lower-cased ASCII; returns the Porter stem.
    Words of length 1 or 2 are returned unchanged, per the
    algorithm. *)
