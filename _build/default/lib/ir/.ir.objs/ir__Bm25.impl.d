lib/ir/bm25.ml:
