lib/ir/codec.mli: Buffer Bytes
