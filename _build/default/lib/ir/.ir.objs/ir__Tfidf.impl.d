lib/ir/tfidf.ml:
