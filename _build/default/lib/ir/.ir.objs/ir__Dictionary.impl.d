lib/ir/dictionary.ml: Array Hashtbl
