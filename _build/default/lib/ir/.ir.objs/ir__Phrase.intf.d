lib/ir/phrase.mli:
