lib/ir/stopwords.mli:
