lib/ir/similarity.mli:
