lib/ir/postings.mli:
