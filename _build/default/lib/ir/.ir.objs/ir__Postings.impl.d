lib/ir/postings.ml: Buffer Bytes Codec List
