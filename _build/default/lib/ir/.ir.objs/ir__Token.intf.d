lib/ir/token.mli: Format
