lib/ir/dictionary.mli:
