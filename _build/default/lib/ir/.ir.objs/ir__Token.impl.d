lib/ir/token.ml: Format
