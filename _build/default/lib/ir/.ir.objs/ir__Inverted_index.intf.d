lib/ir/inverted_index.mli: Buffer Bytes Dictionary Postings
