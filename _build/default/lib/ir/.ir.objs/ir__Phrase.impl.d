lib/ir/phrase.ml: Array List Stemmer Token Tokenizer
