lib/ir/inverted_index.ml: Array Buffer Bytes Codec Dictionary List Option Postings Stemmer String Token Tokenizer
