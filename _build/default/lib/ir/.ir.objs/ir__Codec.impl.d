lib/ir/codec.ml: Buffer Bytes Char
