lib/ir/stopwords.ml: Hashtbl List
