lib/ir/stemmer.ml: Bytes String
