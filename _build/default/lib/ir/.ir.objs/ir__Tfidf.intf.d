lib/ir/tfidf.mli:
