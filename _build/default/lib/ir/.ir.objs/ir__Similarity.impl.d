lib/ir/similarity.ml: Hashtbl Option Token Tokenizer
