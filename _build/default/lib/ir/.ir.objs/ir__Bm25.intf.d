lib/ir/bm25.mli:
