lib/ir/stemmer.mli:
