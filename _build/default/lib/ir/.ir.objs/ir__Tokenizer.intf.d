lib/ir/tokenizer.mli: Token
