(** Positional posting lists.

    An occurrence records where a term appears: in which document, in
    which element ([node] is the start key of the element that
    directly owns the text), and at which word position. Occurrences
    are kept sorted by [(doc, pos)], which is document order, and are
    stored varint-delta compressed — decoding is real per-occurrence
    work, mirroring the index-scan cost of a disk-resident system. *)

type occ = { doc : int; node : int; pos : int }

val compare_occ : occ -> occ -> int
(** Order by [(doc, pos)]. *)

type builder

val builder : unit -> builder

val add : builder -> occ -> unit
(** Occurrences must be appended in [(doc, pos)] order; out-of-order
    appends raise [Invalid_argument]. *)

type t
(** A frozen, compressed posting list. *)

val freeze : builder -> t
val length : t -> int
(** Number of occurrences (the term's collection frequency). *)

val byte_size : t -> int

type cursor

val cursor : t -> cursor

val next : cursor -> occ option
(** Decode and return the next occurrence, or [None] at the end. *)

val reset : cursor -> unit

val iter : (occ -> unit) -> t -> unit
val to_list : t -> occ list
val of_list : occ list -> t
(** Builds from a list that must already be sorted by [(doc, pos)]. *)

(** {1 Serialization} *)

val serialize : t -> string
(** The raw compressed bytes (count is carried separately). *)

val deserialize : count:int -> string -> t
