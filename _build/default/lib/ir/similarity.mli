(** Text-to-text similarity used by scored join conditions.

    [count_same] is the ScoreSim function of Fig. 9; [cosine] is the
    vector-space refinement the paper mentions as the realistic
    alternative. *)

val count_same : string -> string -> int
(** Number of distinct terms occurring in both texts. *)

val cosine : string -> string -> float
(** Cosine of the term-count vectors of the two texts; in [0, 1]. *)

val jaccard : string -> string -> float
(** Term-set Jaccard coefficient; in [0, 1]. *)
