let idf ~doc_count ~doc_freq =
  log (float_of_int (doc_count + 1) /. float_of_int (doc_freq + 1)) +. 1.

let tf ~count = if count <= 0 then 0. else 1. +. log (float_of_int count)

let weight ~doc_count ~doc_freq ~count =
  tf ~count *. idf ~doc_count ~doc_freq

let normalized_weight ~doc_count ~doc_freq ~count ~element_size =
  if element_size <= 0 then 0.
  else
    weight ~doc_count ~doc_freq ~count
    /. sqrt (float_of_int element_size)
