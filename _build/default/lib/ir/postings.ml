type occ = { doc : int; node : int; pos : int }

let compare_occ a b =
  match compare a.doc b.doc with 0 -> compare a.pos b.pos | c -> c

type builder = {
  buf : Buffer.t;
  mutable count : int;
  mutable last_doc : int;
  mutable last_node : int;
  mutable last_pos : int;
}

let builder () =
  { buf = Buffer.create 64; count = 0; last_doc = 0; last_node = 0;
    last_pos = 0 }

let add b occ =
  if occ.doc < b.last_doc
     || (occ.doc = b.last_doc && b.count > 0 && occ.pos < b.last_pos)
  then invalid_arg "Postings.add: occurrences out of order";
  if occ.doc <> b.last_doc then begin
    Codec.add_varint b.buf (occ.doc - b.last_doc);
    b.last_node <- 0;
    b.last_pos <- 0
  end
  else Codec.add_varint b.buf 0;
  Codec.add_zigzag b.buf (occ.node - b.last_node);
  Codec.add_varint b.buf (occ.pos - b.last_pos);
  b.last_doc <- occ.doc;
  b.last_node <- occ.node;
  b.last_pos <- occ.pos;
  b.count <- b.count + 1

type t = { data : Bytes.t; count : int }

let freeze b = { data = Buffer.to_bytes b.buf; count = b.count }
let length t = t.count
let byte_size t = Bytes.length t.data

type cursor = {
  list : t;
  mutable off : int;
  mutable seen : int;
  mutable doc : int;
  mutable node : int;
  mutable pos : int;
}

let cursor list = { list; off = 0; seen = 0; doc = 0; node = 0; pos = 0 }

let next c =
  if c.seen >= c.list.count then None
  else begin
    let doc_delta, off = Codec.read_varint c.list.data c.off in
    if doc_delta <> 0 then begin
      c.doc <- c.doc + doc_delta;
      c.node <- 0;
      c.pos <- 0
    end;
    let node_delta, off = Codec.read_zigzag c.list.data off in
    let pos_delta, off = Codec.read_varint c.list.data off in
    c.node <- c.node + node_delta;
    c.pos <- c.pos + pos_delta;
    c.off <- off;
    c.seen <- c.seen + 1;
    Some { doc = c.doc; node = c.node; pos = c.pos }
  end

let reset c =
  c.off <- 0;
  c.seen <- 0;
  c.doc <- 0;
  c.node <- 0;
  c.pos <- 0

let iter f t =
  let c = cursor t in
  let rec go () =
    match next c with
    | Some occ ->
      f occ;
      go ()
    | None -> ()
  in
  go ()

let to_list t =
  let acc = ref [] in
  iter (fun occ -> acc := occ :: !acc) t;
  List.rev !acc

let of_list occs =
  let b = builder () in
  List.iter (add b) occs;
  freeze b

let serialize t = Bytes.to_string t.data
let deserialize ~count data = { data = Bytes.of_string data; count }
