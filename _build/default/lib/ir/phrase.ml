let parse s = Tokenizer.terms s

(* KMP failure function over the term sequence. *)
let failure_table pattern =
  let k = Array.length pattern in
  let fail = Array.make k 0 in
  let cand = ref 0 in
  for i = 1 to k - 1 do
    while !cand > 0 && pattern.(i) <> pattern.(!cand) do
      cand := fail.(!cand - 1)
    done;
    if pattern.(i) = pattern.(!cand) then incr cand;
    fail.(i) <- !cand
  done;
  fail

let count ?(stem = true) ~terms text =
  match terms with
  | [] -> 0
  | terms ->
    let normalize t = if stem then Stemmer.stem t else t in
    let pattern = Array.of_list (List.map normalize terms) in
    let k = Array.length pattern in
    let fail = failure_table pattern in
    (* Token positions from the tokenizer are consecutive within one
       text, so phrase adjacency is sequence adjacency here; KMP over
       the token stream counts (possibly overlapping) matches. *)
    let matches, _ =
      Tokenizer.fold
        (fun ~acc:(matches, state) (tok : Token.t) ->
          let w = normalize tok.term in
          let state = ref state in
          while !state > 0 && pattern.(!state) <> w do
            state := fail.(!state - 1)
          done;
          if pattern.(!state) = w then incr state;
          if !state = k then (matches + 1, fail.(k - 1))
          else (matches, !state))
        (0, 0) text
    in
    matches

let contains ?stem ~terms text = count ?stem ~terms text > 0
