let idf ~doc_count ~doc_freq =
  let n = float_of_int doc_count and df = float_of_int doc_freq in
  log (1. +. ((n -. df +. 0.5) /. (df +. 0.5)))

let score ?(k1 = 1.2) ?(b = 0.75) ~doc_count ~doc_freq ~count ~element_size
    ~avg_size () =
  if count <= 0 then 0.
  else begin
    let tf = float_of_int count in
    let len = float_of_int (max 1 element_size) in
    let avg = if avg_size <= 0. then len else avg_size in
    let norm = k1 *. (1. -. b +. (b *. len /. avg)) in
    idf ~doc_count ~doc_freq *. (tf *. (k1 +. 1.) /. (tf +. norm))
  end
