let term_counts s =
  let counts = Hashtbl.create 32 in
  Tokenizer.fold
    (fun ~acc:() (tok : Token.t) ->
      let c = Option.value ~default:0 (Hashtbl.find_opt counts tok.term) in
      Hashtbl.replace counts tok.term (c + 1))
    () s;
  counts

let count_same a b =
  let ca = term_counts a and cb = term_counts b in
  Hashtbl.fold (fun term _ acc -> if Hashtbl.mem cb term then acc + 1 else acc)
    ca 0

let cosine a b =
  let ca = term_counts a and cb = term_counts b in
  let norm counts =
    sqrt
      (Hashtbl.fold
         (fun _ c acc -> acc +. (float_of_int c *. float_of_int c))
         counts 0.)
  in
  let na = norm ca and nb = norm cb in
  if na = 0. || nb = 0. then 0.
  else begin
    let dot =
      Hashtbl.fold
        (fun term c acc ->
          match Hashtbl.find_opt cb term with
          | Some c' -> acc +. (float_of_int c *. float_of_int c')
          | None -> acc)
        ca 0.
    in
    dot /. (na *. nb)
  end

let jaccard a b =
  let ca = term_counts a and cb = term_counts b in
  let inter =
    Hashtbl.fold
      (fun term _ acc -> if Hashtbl.mem cb term then acc + 1 else acc)
      ca 0
  in
  let union = Hashtbl.length ca + Hashtbl.length cb - inter in
  if union = 0 then 0. else float_of_int inter /. float_of_int union
