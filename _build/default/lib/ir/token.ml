type t = { term : string; pos : int }

let pp ppf t = Format.fprintf ppf "%s@%d" t.term t.pos
let equal a b = a.term = b.term && a.pos = b.pos
