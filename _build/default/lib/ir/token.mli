(** Tokens produced by the {!Tokenizer}. *)

type t = {
  term : string;  (** lower-cased surface form *)
  pos : int;  (** word position, counted from the tokenizer's origin *)
}

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
