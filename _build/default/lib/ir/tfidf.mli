(** tf·idf weighting (Salton & McGill), the scoring basis the paper
    suggests for index-generated scores (Sec. 5.1). *)

val idf : doc_count:int -> doc_freq:int -> float
(** [idf ~doc_count ~doc_freq] is [log ((N + 1) / (df + 1)) + 1], a
    smoothed inverse document frequency that is strictly positive and
    defined for unseen terms. *)

val tf : count:int -> float
(** Logarithmically damped term frequency: [1 + log count] for
    [count > 0], [0.] otherwise. *)

val weight : doc_count:int -> doc_freq:int -> count:int -> float
(** [tf * idf]. *)

val normalized_weight :
  doc_count:int -> doc_freq:int -> count:int -> element_size:int -> float
(** tf·idf damped by element size (word count), so that a match in a
    small paragraph outscores the same match diluted in a whole
    article — the element-size-aware computation mentioned in
    Sec. 3.1. *)
