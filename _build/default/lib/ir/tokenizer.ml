let is_word_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> true
  | _ -> false

let lower c = if c >= 'A' && c <= 'Z' then Char.chr (Char.code c + 32) else c

let fold ?(start_pos = 0) f init s =
  let n = String.length s in
  let buf = Buffer.create 16 in
  let rec scan i pos acc =
    if i >= n then acc
    else if is_word_char s.[i] then begin
      Buffer.clear buf;
      let j = ref i in
      while !j < n && is_word_char s.[!j] do
        Buffer.add_char buf (lower s.[!j]);
        incr j
      done;
      let acc = f ~acc { Token.term = Buffer.contents buf; pos } in
      scan !j (pos + 1) acc
    end
    else scan (i + 1) pos acc
  in
  scan 0 start_pos init

let tokens ?start_pos s =
  List.rev (fold ?start_pos (fun ~acc t -> t :: acc) [] s)

let count s =
  let n = String.length s in
  let total = ref 0 and in_word = ref false in
  for i = 0 to n - 1 do
    if is_word_char s.[i] then begin
      if not !in_word then incr total;
      in_word := true
    end
    else in_word := false
  done;
  !total

let terms s = List.rev (fold (fun ~acc t -> t.Token.term :: acc) [] s)
