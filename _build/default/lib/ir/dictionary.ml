type term_id = int

type t = {
  ids : (string, term_id) Hashtbl.t;
  mutable terms : string array;
  mutable count : int;
}

let create () = { ids = Hashtbl.create 4096; terms = Array.make 16 ""; count = 0 }

let grow t =
  let capacity = Array.length t.terms in
  if t.count >= capacity then begin
    let fresh = Array.make (capacity * 2) "" in
    Array.blit t.terms 0 fresh 0 capacity;
    t.terms <- fresh
  end

let intern t term =
  match Hashtbl.find_opt t.ids term with
  | Some id -> id
  | None ->
    let id = t.count in
    grow t;
    t.terms.(id) <- term;
    t.count <- t.count + 1;
    Hashtbl.replace t.ids term id;
    id

let find t term = Hashtbl.find_opt t.ids term
let term t id = t.terms.(id)
let size t = t.count
let iter f t = Hashtbl.iter f t.ids
