(* A faithful translation of Porter's reference implementation
   (https://tartarus.org/martin/PorterStemmer/). The word being
   stemmed lives in [b.(0..k)]; [j] marks the end of the stem during
   suffix tests. *)

type state = { mutable b : Bytes.t; mutable k : int; mutable j : int }

let rec is_consonant st i =
  match Bytes.get st.b i with
  | 'a' | 'e' | 'i' | 'o' | 'u' -> false
  | 'y' -> if i = 0 then true else not (is_consonant st (i - 1))
  | _ -> true

(* Number of vowel-to-consonant transitions in [0..j]: the m() measure
   of the algorithm. *)
let measure st =
  let j = st.j in
  let rec skip pred i = if i <= j && pred i then skip pred (i + 1) else i in
  let cons i = is_consonant st i in
  let vowel i = not (is_consonant st i) in
  let i = skip cons 0 in
  if i > j then 0
  else begin
    let rec count n i =
      let i = skip vowel i in
      if i > j then n
      else begin
        let n = n + 1 in
        let i = skip cons i in
        if i > j then n else count n i
      end
    in
    count 0 i
  end

let vowel_in_stem st =
  let rec go i = i <= st.j && (not (is_consonant st i) || go (i + 1)) in
  go 0

let double_consonant st i =
  i >= 1
  && Bytes.get st.b i = Bytes.get st.b (i - 1)
  && is_consonant st i

(* cvc(i) is true when i-2..i is consonant-vowel-consonant and the
   second consonant is not w, x or y; restores an e at the end of a
   short word, e.g. cav(e), lov(e). *)
let cvc st i =
  if i < 2 || not (is_consonant st i) || is_consonant st (i - 1)
     || not (is_consonant st (i - 2))
  then false
  else
    match Bytes.get st.b i with 'w' | 'x' | 'y' -> false | _ -> true

let ends st s =
  let l = String.length s in
  if l > st.k + 1 then false
  else if Bytes.sub_string st.b (st.k - l + 1) l <> s then false
  else begin
    st.j <- st.k - l;
    true
  end

let set_to st s =
  let l = String.length s in
  Bytes.blit_string s 0 st.b (st.j + 1) l;
  st.k <- st.j + l

let replace_if_measure st s = if measure st > 0 then set_to st s

(* step1ab: plurals and -ed / -ing *)
let step1ab st =
  if Bytes.get st.b st.k = 's' then begin
    if ends st "sses" then st.k <- st.k - 2
    else if ends st "ies" then set_to st "i"
    else if Bytes.get st.b (st.k - 1) <> 's' then st.k <- st.k - 1
  end;
  if ends st "eed" then begin
    if measure st > 0 then st.k <- st.k - 1
  end
  else if (ends st "ed" || ends st "ing") && vowel_in_stem st then begin
    st.k <- st.j;
    if ends st "at" then set_to st "ate"
    else if ends st "bl" then set_to st "ble"
    else if ends st "iz" then set_to st "ize"
    else if double_consonant st st.k then begin
      st.k <- st.k - 1;
      match Bytes.get st.b st.k with
      | 'l' | 's' | 'z' -> st.k <- st.k + 1
      | _ -> ()
    end
    else if measure st = 1 && cvc st st.k then set_to st "e"
  end

(* step1c: -y to -i when there is another vowel in the stem *)
let step1c st =
  if ends st "y" && vowel_in_stem st then Bytes.set st.b st.k 'i'

let step2 st =
  if st.k < 1 then ()
  else
    match Bytes.get st.b (st.k - 1) with
    | 'a' ->
      if ends st "ational" then replace_if_measure st "ate"
      else if ends st "tional" then replace_if_measure st "tion"
    | 'c' ->
      if ends st "enci" then replace_if_measure st "ence"
      else if ends st "anci" then replace_if_measure st "ance"
    | 'e' -> if ends st "izer" then replace_if_measure st "ize"
    | 'l' ->
      if ends st "bli" then replace_if_measure st "ble"
      else if ends st "alli" then replace_if_measure st "al"
      else if ends st "entli" then replace_if_measure st "ent"
      else if ends st "eli" then replace_if_measure st "e"
      else if ends st "ousli" then replace_if_measure st "ous"
    | 'o' ->
      if ends st "ization" then replace_if_measure st "ize"
      else if ends st "ation" then replace_if_measure st "ate"
      else if ends st "ator" then replace_if_measure st "ate"
    | 's' ->
      if ends st "alism" then replace_if_measure st "al"
      else if ends st "iveness" then replace_if_measure st "ive"
      else if ends st "fulness" then replace_if_measure st "ful"
      else if ends st "ousness" then replace_if_measure st "ous"
    | 't' ->
      if ends st "aliti" then replace_if_measure st "al"
      else if ends st "iviti" then replace_if_measure st "ive"
      else if ends st "biliti" then replace_if_measure st "ble"
    | 'g' -> if ends st "logi" then replace_if_measure st "log"
    | _ -> ()

let step3 st =
  match Bytes.get st.b st.k with
  | 'e' ->
    if ends st "icate" then replace_if_measure st "ic"
    else if ends st "ative" then replace_if_measure st ""
    else if ends st "alize" then replace_if_measure st "al"
  | 'i' -> if ends st "iciti" then replace_if_measure st "ic"
  | 'l' ->
    if ends st "ical" then replace_if_measure st "ic"
    else if ends st "ful" then replace_if_measure st ""
  | 's' -> if ends st "ness" then replace_if_measure st ""
  | _ -> ()

let step4 st =
  if st.k < 1 then ()
  else begin
    let matched =
      match Bytes.get st.b (st.k - 1) with
      | 'a' -> ends st "al"
      | 'c' -> ends st "ance" || ends st "ence"
      | 'e' -> ends st "er"
      | 'i' -> ends st "ic"
      | 'l' -> ends st "able" || ends st "ible"
      | 'n' ->
        ends st "ant" || ends st "ement" || ends st "ment" || ends st "ent"
      | 'o' ->
        (ends st "ion"
        && st.j >= 0
        &&
        match Bytes.get st.b st.j with 's' | 't' -> true | _ -> false)
        || ends st "ou"
      | 's' -> ends st "ism"
      | 't' -> ends st "ate" || ends st "iti"
      | 'u' -> ends st "ous"
      | 'v' -> ends st "ive"
      | 'z' -> ends st "ize"
      | _ -> false
    in
    if matched && measure st > 1 then st.k <- st.j
  end

let step5 st =
  st.j <- st.k;
  if Bytes.get st.b st.k = 'e' then begin
    let a = measure st in
    if a > 1 || (a = 1 && not (cvc st (st.k - 1))) then st.k <- st.k - 1
  end;
  if Bytes.get st.b st.k = 'l' && double_consonant st st.k && measure st > 1
  then st.k <- st.k - 1

let stem w =
  let n = String.length w in
  if n <= 2 then w
  else begin
    let st = { b = Bytes.of_string w; k = n - 1; j = 0 } in
    step1ab st;
    step1c st;
    step2 st;
    step3 st;
    step4 st;
    step5 st;
    Bytes.sub_string st.b 0 (st.k + 1)
  end
