(** Phrase handling: a phrase is an ordered list of terms that must
    occur at consecutive word positions. *)

val parse : string -> string list
(** Tokenize a phrase specification such as ["information retrieval"]
    into its terms. *)

val count : ?stem:bool -> terms:string list -> string -> int
(** [count ~terms text] is the number of occurrences of the phrase in
    [text]. With [~stem:true] (the default) both the phrase terms and
    the text tokens are Porter-stemmed first, so "search engines"
    matches the phrase "search engine" — the behaviour assumed by the
    paper's worked example (Fig. 5 scores). An empty phrase has no
    occurrences. *)

val contains : ?stem:bool -> terms:string list -> string -> bool
