(** The term dictionary: maps terms to dense integer ids and keeps
    per-term collection statistics. *)

type term_id = int

type t

val create : unit -> t

val intern : t -> string -> term_id
(** [intern d term] returns the id of [term], allocating one if the
    term is new. *)

val find : t -> string -> term_id option
val term : t -> term_id -> string
val size : t -> int
(** Number of distinct terms. *)

val iter : (string -> term_id -> unit) -> t -> unit
