(** Equi-width score histograms.

    Sec. 5.3: asking users for an exact relevance-score threshold is
    unrealistic; a histogram of data IR-node scores lets thresholds
    be specified as fractions ("top 10% of scores") and lets Pick be
    evaluated efficiently. *)

type t

val create : ?buckets:int -> lo:float -> hi:float -> unit -> t
(** [buckets] defaults to 64. Values outside [[lo, hi]] are clamped
    into the extreme buckets. *)

val of_values : ?buckets:int -> float list -> t
(** Build with [lo]/[hi] taken from the data (empty list gives an
    empty histogram over [[0, 1]]). *)

val add : t -> float -> unit
val total : t -> int
val count_above : t -> float -> int
(** Upper bound on the number of recorded values strictly greater
    than [v] (exact at bucket boundaries). *)

val threshold_for_top : t -> int -> float
(** [threshold_for_top t k] is a score threshold [v] such that at
    most [k] values exceed [v], as low as the bucket resolution
    allows. Returns [lo] when [k >= total]. *)

val quantile : t -> float -> float
(** [quantile t q] with [q] in [0, 1]: an approximate score at the
    [q]-quantile. *)

val pp : Format.formatter -> t -> unit
