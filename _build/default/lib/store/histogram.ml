type t = {
  lo : float;
  hi : float;
  counts : int array;
  mutable n : int;
}

let create ?(buckets = 64) ~lo ~hi () =
  if buckets <= 0 then invalid_arg "Histogram.create: buckets <= 0";
  let hi = if hi <= lo then lo +. 1. else hi in
  { lo; hi; counts = Array.make buckets 0; n = 0 }

let bucket_of t v =
  let buckets = Array.length t.counts in
  let raw =
    int_of_float (float_of_int buckets *. (v -. t.lo) /. (t.hi -. t.lo))
  in
  max 0 (min (buckets - 1) raw)

let add t v =
  t.counts.(bucket_of t v) <- t.counts.(bucket_of t v) + 1;
  t.n <- t.n + 1

let of_values ?buckets values =
  match values with
  | [] -> create ?buckets ~lo:0. ~hi:1. ()
  | v :: rest ->
    let lo = List.fold_left min v rest and hi = List.fold_left max v rest in
    let t = create ?buckets ~lo ~hi () in
    List.iter (add t) values;
    t

let total t = t.n

let bucket_lo t i =
  let buckets = Array.length t.counts in
  t.lo +. (float_of_int i *. (t.hi -. t.lo) /. float_of_int buckets)

let count_above t v =
  if v < t.lo then t.n
  else if v >= t.hi then 0
  else begin
    let b = bucket_of t v in
    (* values in bucket b may or may not exceed v: count them all
       (upper bound) *)
    let acc = ref 0 in
    for i = b to Array.length t.counts - 1 do
      acc := !acc + t.counts.(i)
    done;
    !acc
  end

let threshold_for_top t k =
  if k >= t.n then t.lo
  else begin
    let buckets = Array.length t.counts in
    let acc = ref 0 and cut = ref buckets in
    (* walk buckets from the top until we have at least k values *)
    let i = ref (buckets - 1) in
    while !i >= 0 && !acc < k do
      acc := !acc + t.counts.(!i);
      cut := !i;
      decr i
    done;
    bucket_lo t !cut
  end

let quantile t q =
  let q = max 0. (min 1. q) in
  let target = int_of_float (q *. float_of_int t.n) in
  let acc = ref 0 and i = ref 0 in
  let buckets = Array.length t.counts in
  while !i < buckets - 1 && !acc + t.counts.(!i) < target do
    acc := !acc + t.counts.(!i);
    incr i
  done;
  bucket_lo t !i

let pp ppf t =
  Format.fprintf ppf "@[<v>histogram [%g, %g], %d values@," t.lo t.hi t.n;
  Array.iteri
    (fun i c -> if c > 0 then Format.fprintf ppf "  [%g..) %d@," (bucket_lo t i) c)
    t.counts;
  Format.fprintf ppf "@]"
