(** The stored representation of one XML element. *)

type t = {
  doc : int;
  start : int;  (** start key *)
  end_ : int;  (** end key *)
  level : int;  (** root is 0 *)
  parent : int;  (** start key of the parent, [-1] for a root *)
  child_count : int;  (** number of element children *)
  tag : int;  (** tag id in the catalog *)
  word_count : int;  (** tokens in the whole subtree *)
  text : string;  (** direct text content (concatenated) *)
}

val contains : t -> t -> bool
(** [contains a b]: [a] is a proper ancestor of [b] (same document,
    interval containment). *)

val contains_key : t -> int -> bool
(** The element's interval covers the given key position. *)

val encode : Buffer.t -> t -> unit
(** Append the record's serialized form (without the doc id, which is
    page-level metadata). *)

val decode : doc:int -> Bytes.t -> int -> t * int
(** [decode ~doc page off] is [(record, next_off)]. *)

val decode_meta : doc:int -> Bytes.t -> int -> t * int
(** Like {!decode} but skips over the text payload without copying
    it; the [text] field of the result is [""]. Used by scans that
    only need structure. *)

val pp : Format.formatter -> t -> unit
