type item = { doc : int; start : int; end_ : int; level : int }

type t = { by_tag : item array array; everything : item array }

type builder = {
  mutable per_tag : item list array;  (* reverse document order *)
  mutable all_rev : item list;
  mutable total : int;
  mutable last : int * int;
}

let builder () =
  { per_tag = Array.make 16 []; all_rev = []; total = 0; last = (-1, -1) }

let add b ~tag item =
  if (item.doc, item.start) <= b.last then
    invalid_arg "Tag_index.add: items out of order";
  b.last <- (item.doc, item.start);
  let capacity = Array.length b.per_tag in
  if tag >= capacity then begin
    let fresh = Array.make (max (capacity * 2) (tag + 1)) [] in
    Array.blit b.per_tag 0 fresh 0 capacity;
    b.per_tag <- fresh
  end;
  b.per_tag.(tag) <- item :: b.per_tag.(tag);
  b.all_rev <- item :: b.all_rev;
  b.total <- b.total + 1

let freeze b =
  {
    by_tag = Array.map (fun l -> Array.of_list (List.rev l)) b.per_tag;
    everything = Array.of_list (List.rev b.all_rev);
  }

let nodes t ~tag =
  if tag >= 0 && tag < Array.length t.by_tag then t.by_tag.(tag) else [||]

let all t = t.everything
let count t ~tag = Array.length (nodes t ~tag)
let tag_count t = Array.length t.by_tag
