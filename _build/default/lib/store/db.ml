let src = Logs.Src.create "tix.store" ~doc:"TIX storage engine"

module Log = (val Logs.src_log src)

type load_options = {
  stem : bool;
  page_size : int;
  pool_pages : int;
  keep_trees : bool;
}

let default_options =
  {
    stem = false;
    page_size = Pager.default_page_size;
    pool_pages = 1024;
    keep_trees = true;
  }

type t = {
  catalog : Catalog.t;
  elements : Element_store.t;
  parents : Parent_index.t;
  tags : Tag_index.t;
  index : Ir.Inverted_index.t;
  numberings : Xmlkit.Numbering.t array option;
}

type stats = {
  documents : int;
  elements : int;
  distinct_terms : int;
  occurrences : int;
  pages : int;
  index_bytes : int;
}

(* Number of descendant elements of each element, from the preorder
   info array: a following element belongs to the subtree while its
   interval is contained. *)
let descendant_counts (infos : Xmlkit.Numbering.info array) =
  let n = Array.length infos in
  let counts = Array.make n 0 in
  (* stack of indices of currently open elements *)
  let stack = ref [] in
  for i = 0 to n - 1 do
    let rec close () =
      match !stack with
      | top :: rest when infos.(top).Xmlkit.Numbering.end_ < infos.(i).start ->
        stack := rest;
        close ()
      | _ -> ()
    in
    close ();
    List.iter (fun a -> counts.(a) <- counts.(a) + 1) !stack;
    stack := i :: !stack
  done;
  counts

let load ?(options = default_options) docs =
  let catalog = Catalog.create () in
  let store_builder =
    Element_store.builder ~page_size:options.page_size
      ~pool_pages:options.pool_pages ()
  in
  let parent_builder = Parent_index.builder () in
  let tag_builder = Tag_index.builder () in
  let index_builder = Ir.Inverted_index.builder ~stem:options.stem () in
  let numberings = ref [] in
  let ingest (name, root) =
    let doc = Catalog.add_document catalog name in
    let text ~owner:_ ~owner_start ~start_key s =
      let next =
        Ir.Inverted_index.index_text index_builder ~doc ~node:owner_start
          ~start_pos:start_key s
      in
      next - start_key
    in
    let numbering = Xmlkit.Numbering.number ~text root in
    let infos = numbering.Xmlkit.Numbering.infos in
    let desc = descendant_counts infos in
    Array.iteri
      (fun i (info : Xmlkit.Numbering.info) ->
        let parent_start =
          if info.parent < 0 then -1 else infos.(info.parent).start
        in
        let tag = Catalog.intern_tag catalog info.tag in
        let word_count = info.end_ - info.start - 1 - (2 * desc.(i)) in
        let text_content =
          String.concat " "
            (Xmlkit.Tree.child_texts numbering.Xmlkit.Numbering.elements.(i))
        in
        Element_store.add store_builder
          {
            Element_rec.doc;
            start = info.start;
            end_ = info.end_;
            level = info.level;
            parent = parent_start;
            child_count = info.child_count;
            tag;
            word_count;
            text = text_content;
          };
        Parent_index.add parent_builder ~doc ~start:info.start
          {
            Parent_index.parent = parent_start;
            child_count = info.child_count;
            level = info.level;
            end_ = info.end_;
            tag;
          };
        Tag_index.add tag_builder ~tag
          { Tag_index.doc; start = info.start; end_ = info.end_; level = info.level })
      infos;
    if options.keep_trees then numberings := numbering :: !numberings
  in
  let started = Unix.gettimeofday () in
  Seq.iter ingest docs;
  Log.info (fun m ->
      m "loaded %d documents in %.1f ms"
        (Catalog.document_count catalog)
        ((Unix.gettimeofday () -. started) *. 1000.));
  {
    catalog;
    elements = Element_store.freeze store_builder;
    parents = Parent_index.freeze parent_builder;
    tags = Tag_index.freeze tag_builder;
    index = Ir.Inverted_index.freeze index_builder;
    numberings =
      (if options.keep_trees then Some (Array.of_list (List.rev !numberings))
       else None);
  }

let of_documents ?options docs = load ?options (List.to_seq docs)

let catalog (t : t) = t.catalog
let elements (t : t) = t.elements
let parents (t : t) = t.parents
let tags (t : t) = t.tags
let index (t : t) = t.index
let document_id t name = Catalog.document_id t.catalog name

let stats t =
  let istats = Ir.Inverted_index.stats t.index in
  {
    documents = Catalog.document_count t.catalog;
    elements = Element_store.element_count t.elements;
    distinct_terms = istats.Ir.Inverted_index.distinct_terms;
    occurrences = istats.total_occurrences;
    pages = Pager.page_count (Element_store.pager t.elements);
    index_bytes = istats.bytes;
  }

let numbering t ~doc =
  match t.numberings with
  | Some arr when doc >= 0 && doc < Array.length arr -> Some arr.(doc)
  | Some _ | None -> None

let subtree t ~doc ~start =
  match numbering t ~doc with
  | None -> None
  | Some num ->
    (match Xmlkit.Numbering.find_by_start num start with
    | Some info -> Some num.Xmlkit.Numbering.elements.(info.index)
    | None -> None)

let tag_of t ~doc ~start =
  match Parent_index.find t.parents ~doc ~start with
  | Some e -> Some (Catalog.tag_name t.catalog e.Parent_index.tag)
  | None -> None

let pp_stats ppf s =
  Format.fprintf ppf
    "documents=%d elements=%d terms=%d occurrences=%d pages=%d index_bytes=%d"
    s.documents s.elements s.distinct_terms s.occurrences s.pages s.index_bytes

(* ------------------------------------------------------------------ *)
(* Persistence *)

let magic = "TIXDB001"

let add_string buf s =
  Ir.Codec.add_varint buf (String.length s);
  Buffer.add_string buf s

let read_string bytes off =
  let len, off = Ir.Codec.read_varint bytes off in
  (Bytes.sub_string bytes off len, off + len)

let save t path =
  let buf = Buffer.create (1 lsl 20) in
  Buffer.add_string buf magic;
  (* catalog *)
  Ir.Codec.add_varint buf (Catalog.document_count t.catalog);
  for doc = 0 to Catalog.document_count t.catalog - 1 do
    add_string buf (Catalog.document_name t.catalog doc)
  done;
  Ir.Codec.add_varint buf (Catalog.tag_count t.catalog);
  for tag = 0 to Catalog.tag_count t.catalog - 1 do
    add_string buf (Catalog.tag_name t.catalog tag)
  done;
  Element_store.save t.elements buf;
  Ir.Inverted_index.save t.index buf;
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> Buffer.output_buffer oc buf)

let open_file ?pool_pages path =
  let ic = open_in_bin path in
  let bytes =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        Bytes.of_string (really_input_string ic (in_channel_length ic)))
  in
  if
    Bytes.length bytes < String.length magic
    || Bytes.sub_string bytes 0 (String.length magic) <> magic
  then failwith "Db.open_file: not a TIX database image";
  let off = String.length magic in
  let catalog = Catalog.create () in
  let ndocs, off = Ir.Codec.read_varint bytes off in
  let off = ref off in
  for _ = 1 to ndocs do
    let name, o = read_string bytes !off in
    ignore (Catalog.add_document catalog name);
    off := o
  done;
  let ntags, o = Ir.Codec.read_varint bytes !off in
  off := o;
  for _ = 1 to ntags do
    let name, o = read_string bytes !off in
    ignore (Catalog.intern_tag catalog name);
    off := o
  done;
  let elements, o = Element_store.load ?pool_pages bytes !off in
  off := o;
  let index, o = Ir.Inverted_index.load bytes !off in
  off := o;
  (* rebuild the in-memory indexes from the element pages *)
  let parent_builder = Parent_index.builder () in
  let tag_builder = Tag_index.builder () in
  Element_store.scan elements (fun (r : Element_rec.t) ->
      Parent_index.add parent_builder ~doc:r.doc ~start:r.start
        {
          Parent_index.parent = r.parent;
          child_count = r.child_count;
          level = r.level;
          end_ = r.end_;
          tag = r.tag;
        };
      Tag_index.add tag_builder ~tag:r.tag
        { Tag_index.doc = r.doc; start = r.start; end_ = r.end_; level = r.level });
  {
    catalog;
    elements;
    parents = Parent_index.freeze parent_builder;
    tags = Tag_index.freeze tag_builder;
    index;
    numberings = None;
  }
