lib/store/crc32.mli: Bytes
