lib/store/catalog.mli:
