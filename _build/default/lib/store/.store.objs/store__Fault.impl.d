lib/store/fault.ml: Bytes Char Int64
