lib/store/element_store.mli: Buffer Bytes Element_rec Pager
