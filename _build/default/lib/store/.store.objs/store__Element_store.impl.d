lib/store/element_store.ml: Array Buffer Bytes Element_rec Ir List Option Pager
