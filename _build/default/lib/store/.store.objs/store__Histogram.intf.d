lib/store/histogram.mli: Format
