lib/store/tag_index.mli:
