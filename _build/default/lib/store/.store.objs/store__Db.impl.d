lib/store/db.ml: Array Buffer Bytes Catalog Element_rec Element_store Format Fun Ir List Logs Pager Parent_index Seq String Tag_index Unix Xmlkit
