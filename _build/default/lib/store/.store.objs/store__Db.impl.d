lib/store/db.ml: Array Buffer Bytes Catalog Char Crc32 Element_rec Element_store Format Fun Ir List Logs Pager Parent_index Printexc Printf Seq String Sys Tag_index Unix Xmlkit
