lib/store/db.mli: Catalog Element_store Format Ir Parent_index Seq Tag_index Xmlkit
