lib/store/element_rec.mli: Buffer Bytes Format
