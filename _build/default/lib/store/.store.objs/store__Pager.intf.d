lib/store/pager.mli: Bytes Fault Format
