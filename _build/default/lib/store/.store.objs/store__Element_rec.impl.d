lib/store/element_rec.ml: Buffer Bytes Format Ir String
