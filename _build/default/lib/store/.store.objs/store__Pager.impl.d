lib/store/pager.ml: Array Bytes Hashtbl
