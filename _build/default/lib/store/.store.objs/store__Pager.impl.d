lib/store/pager.ml: Array Bytes Crc32 Fault Format Hashtbl Printf
