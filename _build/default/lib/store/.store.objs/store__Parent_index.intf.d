lib/store/parent_index.mli:
