lib/store/fault.mli: Bytes
