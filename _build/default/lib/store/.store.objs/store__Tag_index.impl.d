lib/store/tag_index.ml: Array List
