lib/store/parent_index.ml: Array List
