lib/store/histogram.ml: Array Format List
