lib/store/catalog.ml: Array Hashtbl Ir
