(** The database facade: loads XML documents into the element store,
    the parent index and the inverted index in one pass. *)

type t

type load_options = {
  stem : bool;  (** Porter-stem indexed terms (default false) *)
  page_size : int;
  pool_pages : int;
  keep_trees : bool;
      (** retain parsed trees (and their numberings) so query results
          can be materialized as subtrees; turn off for large
          generated corpora (default true) *)
}

val default_options : load_options

type stats = {
  documents : int;
  elements : int;
  distinct_terms : int;
  occurrences : int;
  pages : int;
  index_bytes : int;
}

val load : ?options:load_options -> (string * Xmlkit.Tree.element) Seq.t -> t
(** [load docs] ingests the named documents in order; ids are
    assigned densely from 0. *)

val of_documents : ?options:load_options -> (string * Xmlkit.Tree.element) list -> t

val catalog : t -> Catalog.t
val elements : t -> Element_store.t
val parents : t -> Parent_index.t
val tags : t -> Tag_index.t
val index : t -> Ir.Inverted_index.t
val stats : t -> stats

val document_id : t -> string -> int option

val subtree : t -> doc:int -> start:int -> Xmlkit.Tree.element option
(** Materialize the element with the given start key from the
    retained tree. [None] when the key is unknown or trees were not
    kept. *)

val numbering : t -> doc:int -> Xmlkit.Numbering.t option

val tag_of : t -> doc:int -> start:int -> string option
(** Tag name of the element with the given start key, resolved
    through the parent index and the catalog (no data-page access). *)

(** {1 Persistence} *)

val save : t -> string -> unit
(** [save db path] writes the database image — catalog, element
    pages and inverted index — to one file. Retained trees are not
    persisted. *)

val open_file : ?pool_pages:int -> string -> t
(** Load a database image written by {!save}. The parent and tag
    indexes are rebuilt with one scan of the element pages; trees are
    not retained (queries must use the compiled engine path or reload
    the source documents). Raises [Failure] on a bad image. *)

val pp_stats : Format.formatter -> stats -> unit
