type t = {
  doc : int;
  start : int;
  end_ : int;
  level : int;
  parent : int;
  child_count : int;
  tag : int;
  word_count : int;
  text : string;
}

let contains a b = a.doc = b.doc && a.start < b.start && b.end_ < a.end_
let contains_key a key = a.start <= key && key <= a.end_

let encode buf t =
  Ir.Codec.add_varint buf t.start;
  (* the end key is stored as a delta: intervals are never empty *)
  Ir.Codec.add_varint buf (t.end_ - t.start);
  Ir.Codec.add_varint buf t.level;
  Ir.Codec.add_varint buf (t.parent + 1);
  Ir.Codec.add_varint buf t.child_count;
  Ir.Codec.add_varint buf t.tag;
  Ir.Codec.add_varint buf t.word_count;
  Ir.Codec.add_varint buf (String.length t.text);
  Buffer.add_string buf t.text

let decode ~doc page off =
  let start, off = Ir.Codec.read_varint page off in
  let span, off = Ir.Codec.read_varint page off in
  let level, off = Ir.Codec.read_varint page off in
  let parent1, off = Ir.Codec.read_varint page off in
  let child_count, off = Ir.Codec.read_varint page off in
  let tag, off = Ir.Codec.read_varint page off in
  let word_count, off = Ir.Codec.read_varint page off in
  let text_len, off = Ir.Codec.read_varint page off in
  let text = Bytes.sub_string page off text_len in
  ( {
      doc;
      start;
      end_ = start + span;
      level;
      parent = parent1 - 1;
      child_count;
      tag;
      word_count;
      text;
    },
    off + text_len )

let decode_meta ~doc page off =
  let start, off = Ir.Codec.read_varint page off in
  let span, off = Ir.Codec.read_varint page off in
  let level, off = Ir.Codec.read_varint page off in
  let parent1, off = Ir.Codec.read_varint page off in
  let child_count, off = Ir.Codec.read_varint page off in
  let tag, off = Ir.Codec.read_varint page off in
  let word_count, off = Ir.Codec.read_varint page off in
  let text_len, off = Ir.Codec.read_varint page off in
  ( {
      doc;
      start;
      end_ = start + span;
      level;
      parent = parent1 - 1;
      child_count;
      tag;
      word_count;
      text = "";
    },
    off + text_len )

let pp ppf t =
  Format.fprintf ppf "{doc=%d; [%d,%d]; lvl=%d; parent=%d; children=%d; tag=%d}"
    t.doc t.start t.end_ t.level t.parent t.child_count t.tag
