(** Deterministic, seedable fault injection for the storage layer.

    The injector simulates the disk failing underneath the buffer
    pool. The {!Pager} consults it on every physical page read (pool
    miss) and reacts to the decided outcome:

    - {e transient} faults model a read that fails once and succeeds
      on retry (a timeout, a recoverable bus error). The decision is
      keyed on [(seed, page, attempt)], so retrying the same read
      re-rolls and a bounded retry loop converges whenever the rate
      is below 1.
    - {e corruption} faults model a torn or bit-rotted page: the
      bytes handed back differ from what was written. The decision is
      keyed on [(seed, page)] only, so it is {e permanent} — the same
      page fails identically on every attempt, like a bad sector.

    Everything is a pure function of the seed: a failing run replays
    exactly. *)

type t

val create :
  ?seed:int ->
  ?transient_rate:float ->
  ?corrupt_rate:float ->
  ?max_retries:int ->
  unit ->
  t
(** [transient_rate] and [corrupt_rate] are probabilities in
    [\[0, 1\]] (defaults 0); [max_retries] bounds the pager's retry
    loop for transient faults (default 3 retries after the first
    attempt). *)

type outcome =
  | Healthy
  | Transient  (** this attempt fails; a retry may succeed *)
  | Corrupt  (** the page is permanently damaged *)

val outcome : t -> page:int -> attempt:int -> outcome
(** Decide the fate of read [attempt] (0-based) of [page].
    Deterministic in [(seed, page, attempt)]. *)

val corrupt_in_place : t -> page:int -> Bytes.t -> unit
(** Damage the page image the way the decided corruption would:
    flips one deterministically chosen byte (no-op on empty pages).
    The pager's checksum verification is expected to catch this. *)

val max_retries : t -> int
val seed : t -> int

type injection_stats = { transient : int; corrupt : int }

val stats : t -> injection_stats
(** How many faults of each kind were actually injected. *)
