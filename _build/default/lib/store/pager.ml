type stats = {
  page_count : int;
  reads : int;
  misses : int;
  bytes_transferred : int;
}

type frame = { page_id : int; data : Bytes.t; mutable tick : int }

type t = {
  size : int;
  pool_pages : int;
  mutable stable : Bytes.t array;  (* the simulated disk *)
  mutable stable_count : int;
  frames : (int, frame) Hashtbl.t;
  mutable clock : int;
  mutable reads : int;
  mutable misses : int;
  mutable bytes_transferred : int;
}

let default_page_size = 8192

let create ?(pool_pages = 1024) ~page_size () =
  {
    size = page_size;
    pool_pages;
    stable = Array.make 64 Bytes.empty;
    stable_count = 0;
    frames = Hashtbl.create 256;
    clock = 0;
    reads = 0;
    misses = 0;
    bytes_transferred = 0;
  }

let page_size t = t.size

let append_page t page =
  let capacity = Array.length t.stable in
  if t.stable_count >= capacity then begin
    let fresh = Array.make (capacity * 2) Bytes.empty in
    Array.blit t.stable 0 fresh 0 capacity;
    t.stable <- fresh
  end;
  let id = t.stable_count in
  t.stable.(id) <- page;
  t.stable_count <- id + 1;
  id

let page_count t = t.stable_count

let evict_lru t =
  (* Linear scan over the pool; the pool is small and eviction is on
     the miss path, which already pays a page transfer. *)
  let victim = ref None in
  Hashtbl.iter
    (fun _ frame ->
      match !victim with
      | Some best when best.tick <= frame.tick -> ()
      | Some _ | None -> victim := Some frame)
    t.frames;
  match !victim with
  | Some frame -> Hashtbl.remove t.frames frame.page_id
  | None -> ()

let read_page t id =
  if id < 0 || id >= t.stable_count then invalid_arg "Pager.read_page";
  t.reads <- t.reads + 1;
  t.clock <- t.clock + 1;
  match Hashtbl.find_opt t.frames id with
  | Some frame ->
    frame.tick <- t.clock;
    frame.data
  | None ->
    t.misses <- t.misses + 1;
    let src = t.stable.(id) in
    (* The copy is the simulated disk-to-pool transfer. *)
    let data = Bytes.copy src in
    t.bytes_transferred <- t.bytes_transferred + Bytes.length data;
    if Hashtbl.length t.frames >= t.pool_pages then evict_lru t;
    Hashtbl.replace t.frames id { page_id = id; data; tick = t.clock };
    data

let stats t =
  {
    page_count = t.stable_count;
    reads = t.reads;
    misses = t.misses;
    bytes_transferred = t.bytes_transferred;
  }

let reset_stats t =
  t.reads <- 0;
  t.misses <- 0;
  t.bytes_transferred <- 0

let clear_pool t = Hashtbl.reset t.frames
