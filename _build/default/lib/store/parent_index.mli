(** The parent/child-count index behind {e Enhanced TermJoin}
    (Sec. 6.1): given a node, return its parent {e along with the
    number of children of this parent} without touching data pages. *)

type entry = {
  parent : int;  (** start key of the parent; [-1] for a root *)
  child_count : int;
  level : int;
  end_ : int;
  tag : int;
}

type t

type builder

val builder : unit -> builder

val add : builder -> doc:int -> start:int -> entry -> unit
(** Entries of one document must be added in start order, documents
    in id order. *)

val freeze : builder -> t

val find : t -> doc:int -> start:int -> entry option
(** Binary search over the per-document start array. *)

val parent_of : t -> doc:int -> start:int -> int option
(** Start key of the parent; [None] when [start] is unknown or a
    root. *)

val entry_count : t -> int
