(** A page store with an LRU buffer pool.

    Pages model the disk-resident layout of the TIMBER-style database
    the paper runs inside: every record access goes through
    {!read_page}, misses pay a page transfer (a copy into a pool
    frame) and statistics expose how much of the database each access
    method touches. *)

type t

type stats = {
  page_count : int;
  reads : int;  (** logical page reads *)
  misses : int;  (** reads that were not served from the pool *)
  bytes_transferred : int;
}

val default_page_size : int

val create : ?pool_pages:int -> page_size:int -> unit -> t
(** [pool_pages] is the buffer-pool capacity in frames
    (default 1024). *)

val page_size : t -> int
val append_page : t -> Bytes.t -> int
(** Add a page to stable storage (build time); returns its id.
    The page may be longer than [page_size] (oversized record). *)

val page_count : t -> int

val read_page : t -> int -> Bytes.t
(** Fetch a page through the buffer pool. The returned bytes must be
    treated as read-only. *)

val stats : t -> stats
val reset_stats : t -> unit
val clear_pool : t -> unit
(** Drop every frame: makes the next reads cold, so experiments start
    from a known state. *)
