(** Database catalog: document names and the tag dictionary. *)

type t

val create : unit -> t

val add_document : t -> string -> int
(** Register a document by name; returns its dense id. *)

val document_name : t -> int -> string
val document_id : t -> string -> int option
val document_count : t -> int

val intern_tag : t -> string -> int
val tag_name : t -> int -> string
val tag_id : t -> string -> int option
val tag_count : t -> int
