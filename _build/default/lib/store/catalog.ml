type t = {
  mutable docs : string array;
  mutable doc_count : int;
  doc_ids : (string, int) Hashtbl.t;
  tags : Ir.Dictionary.t;
}

let create () =
  {
    docs = Array.make 16 "";
    doc_count = 0;
    doc_ids = Hashtbl.create 64;
    tags = Ir.Dictionary.create ();
  }

let add_document t name =
  let capacity = Array.length t.docs in
  if t.doc_count >= capacity then begin
    let fresh = Array.make (capacity * 2) "" in
    Array.blit t.docs 0 fresh 0 capacity;
    t.docs <- fresh
  end;
  let id = t.doc_count in
  t.docs.(id) <- name;
  t.doc_count <- id + 1;
  Hashtbl.replace t.doc_ids name id;
  id

let document_name t id = t.docs.(id)
let document_id t name = Hashtbl.find_opt t.doc_ids name
let document_count t = t.doc_count
let intern_tag t tag = Ir.Dictionary.intern t.tags tag
let tag_name t id = Ir.Dictionary.term t.tags id
let tag_id t tag = Ir.Dictionary.find t.tags tag
let tag_count t = Ir.Dictionary.size t.tags
