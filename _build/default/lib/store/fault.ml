type t = {
  seed : int;
  transient_rate : float;
  corrupt_rate : float;
  max_retries : int;
  mutable injected_transient : int;
  mutable injected_corrupt : int;
}

type outcome = Healthy | Transient | Corrupt

type injection_stats = { transient : int; corrupt : int }

let create ?(seed = 0) ?(transient_rate = 0.) ?(corrupt_rate = 0.)
    ?(max_retries = 3) () =
  if transient_rate < 0. || transient_rate > 1. then
    invalid_arg "Fault.create: transient_rate outside [0, 1]";
  if corrupt_rate < 0. || corrupt_rate > 1. then
    invalid_arg "Fault.create: corrupt_rate outside [0, 1]";
  if max_retries < 0 then invalid_arg "Fault.create: negative max_retries";
  {
    seed;
    transient_rate;
    corrupt_rate;
    max_retries;
    injected_transient = 0;
    injected_corrupt = 0;
  }

let max_retries t = t.max_retries
let seed t = t.seed
let stats t = { transient = t.injected_transient; corrupt = t.injected_corrupt }

(* splitmix64 finalizer: a few rounds of multiply-xorshift give a
   well-distributed 64-bit hash of the mixed-in key parts. *)
let mix64 x =
  let open Int64 in
  let x = mul (logxor x (shift_right_logical x 30)) 0xbf58476d1ce4e5b9L in
  let x = mul (logxor x (shift_right_logical x 27)) 0x94d049bb133111ebL in
  logxor x (shift_right_logical x 31)

let hash t ~page ~attempt ~salt =
  let open Int64 in
  let h = mix64 (add (of_int t.seed) 0x9e3779b97f4a7c15L) in
  let h = mix64 (logxor h (of_int page)) in
  let h = mix64 (logxor h (of_int ((attempt lsl 8) lor salt))) in
  h

(* uniform float in [0, 1) from the top 53 bits *)
let unit_float h =
  Int64.to_float (Int64.shift_right_logical h 11) *. (1. /. 9007199254740992.)

let roll t ~page ~attempt ~salt rate =
  rate > 0. && unit_float (hash t ~page ~attempt ~salt) < rate

let outcome t ~page ~attempt =
  (* corruption is a property of the page, not of the attempt *)
  if roll t ~page ~attempt:0 ~salt:1 t.corrupt_rate then begin
    t.injected_corrupt <- t.injected_corrupt + 1;
    Corrupt
  end
  else if roll t ~page ~attempt ~salt:0 t.transient_rate then begin
    t.injected_transient <- t.injected_transient + 1;
    Transient
  end
  else Healthy

let corrupt_in_place t ~page bytes =
  let len = Bytes.length bytes in
  if len > 0 then begin
    let h = hash t ~page ~attempt:0 ~salt:2 in
    let pos = Int64.to_int (Int64.rem (Int64.shift_right_logical h 1) (Int64.of_int len)) in
    (* xor with a nonzero mask so the byte always changes *)
    let mask = 1 + (Int64.to_int (Int64.logand h 0xffL) land 0xfe) in
    Bytes.set bytes pos
      (Char.chr (Char.code (Bytes.get bytes pos) lxor mask))
  end
