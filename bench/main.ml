(* Benchmark harness: regenerates every table of the paper's
   experimental evaluation (Sec. 6) plus the in-text Pick experiment,
   and a bechamel micro-benchmark group.

     dune exec bench/main.exe             # everything
     dune exec bench/main.exe table1      # one experiment
     TIX_BENCH_ARTICLES=500 dune exec bench/main.exe   # smaller corpus

   The corpus is synthetic (the INEX IEEE collection is not
   redistributable) with query terms planted at the exact
   frequencies the paper's experiments select; Table 5 frequencies
   are scaled by 1/10 to fit the default corpus. Absolute times are
   not comparable to the paper's 2003 disk-resident setup; the
   shapes (who wins, how methods scale) are what EXPERIMENTS.md
   tracks. *)

let articles =
  match Sys.getenv_opt "TIX_BENCH_ARTICLES" with
  | Some s -> int_of_string s
  | None -> 2500

let runs =
  match Sys.getenv_opt "TIX_BENCH_RUNS" with
  | Some s -> max 3 (int_of_string s)
  | None -> 5

(* ------------------------------------------------------------------ *)
(* Workload definition *)

let tj_freqs = [ 20; 100; 200; 300; 500; 1000; 2000; 3000; 5500; 7000; 10000 ]
let t3_freqs = [ 20; 200; 1000; 3000; 7000 ]
let t4_term_count = 7
let t4_freq = 1500

(* Table 5 rows from the paper: term1 freq, term2 freq, result size.
   Terms are shared across queries through the frequency pool, as in
   the paper. *)
let table5_rows =
  [
    (121076, 44930, 27991);
    (121076, 79677, 462);
    (107269, 146477, 1219);
    (107269, 79677, 1212);
    (98405, 146477, 877);
    (121076, 146477, 1189);
    (90482, 68801, 116);
    (121076, 45988, 34);
    (121076, 107269, 320);
    (98405, 28044, 455);
    (146477, 68801, 1372);
    (121076, 68801, 249);
    (98405, 107269, 17);
  ]

let t5_scale = 10
let qa f = Printf.sprintf "qa%d" f
let qb f = Printf.sprintf "qb%d" f
let t4_term i = Printf.sprintf "qf%d" i
let pool_term f = Printf.sprintf "pool%d" f

let corpus_config () =
  (* table 1-3 pairs *)
  let tj_plants = List.concat_map (fun f -> [ (qa f, f); (qb f, f) ]) tj_freqs in
  (* table 4 terms *)
  let t4_plants = List.init t4_term_count (fun i -> (t4_term i, t4_freq)) in
  (* table 5: adjacency plants per ordered pair, plus singles topping
     each pooled term up to its scaled frequency *)
  let phrase_plants =
    List.map
      (fun (f1, f2, size) ->
        (pool_term f1, pool_term f2, max 1 (size / t5_scale)))
      table5_rows
  in
  let adj_of term =
    List.fold_left
      (fun acc (t1, t2, r) ->
        acc + (if t1 = term then r else 0) + if t2 = term then r else 0)
      0 phrase_plants
  in
  let pool_freqs =
    List.sort_uniq compare
      (List.concat_map (fun (f1, f2, _) -> [ f1; f2 ]) table5_rows)
  in
  let pool_plants =
    List.map
      (fun f ->
        let term = pool_term f in
        let target = f / t5_scale in
        (term, max 0 (target - adj_of term)))
      pool_freqs
  in
  {
    Workload.Corpus.default with
    articles;
    seed = 20030609;
    planted_terms = tj_plants @ t4_plants @ pool_plants;
    planted_phrases = phrase_plants;
  }

let build_db () =
  let cfg = corpus_config () in
  let t0 = Unix.gettimeofday () in
  let options = { Store.Db.default_options with keep_trees = false } in
  let db = Store.Db.load ~options (Workload.Corpus.generate cfg) in
  Printf.printf "corpus: %s (built in %.1fs)\n%!"
    (Format.asprintf "%a" Store.Db.pp_stats (Store.Db.stats db))
    (Unix.gettimeofday () -. t0);
  db

(* ------------------------------------------------------------------ *)
(* Timing methodology: each experiment runs [runs] times after one
   untimed warmup and reports the median; the JSON dump also carries
   the minimum of the samples. At runs=5 a couple of scheduler
   hiccups used to poison the old drop-extremes trimmed mean (e.g.
   table1/200/TermJoin read 4.26 ms against a 0.22 ms floor), so the
   floor is recorded alongside the median as the noise-free number.
   Runs start with a cold buffer pool. *)

let median samples =
  let s = List.sort compare samples in
  let n = List.length s in
  if n = 0 then nan
  else if n mod 2 = 1 then List.nth s (n / 2)
  else (List.nth s ((n / 2) - 1) +. List.nth s (n / 2)) /. 2.

let minimum samples = List.fold_left Float.min infinity samples

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then nan else sorted.(int_of_float (p *. float_of_int (n - 1)))

(* Machine-readable results: every named measurement accumulates
   here and is dumped as JSON when the run finishes. *)
let bench_results : (string * float list) list ref = ref []

let json_path =
  match Sys.getenv_opt "TIX_BENCH_JSON" with
  | Some p -> p
  | None -> "BENCH_results.json"

let write_results_json () =
  match List.rev !bench_results with
  | [] -> ()
  | entries ->
    let oc = open_out json_path in
    let entry (name, samples) =
      Printf.sprintf
        "  {\"experiment\": %S, \"articles\": %d, \"runs\": %d, \
         \"median_ns\": %.0f, \"min_ns\": %.0f, \"samples_ns\": [%s]}"
        name articles (List.length samples)
        (median samples *. 1e9)
        (minimum samples *. 1e9)
        (String.concat ", "
           (List.map (fun s -> Printf.sprintf "%.0f" (s *. 1e9)) samples))
    in
    (* host_cores makes concurrency-sensitive numbers (group-commit
       ingest ratios, parallel speedups) interpretable offline *)
    Printf.fprintf oc "{\"host_cores\": %d,\n\"results\": [\n"
      (Domain.recommended_domain_count ());
    output_string oc (String.concat ",\n" (List.map entry entries));
    output_string oc "\n]}\n";
    close_out oc;
    Printf.printf "\nwrote %s (%d measurements)\n%!" json_path
      (List.length entries)

let time_once pager f =
  Store.Pager.clear_pool pager;
  Store.Pager.reset_stats pager;
  let t0 = Unix.gettimeofday () in
  let _ = f () in
  Unix.gettimeofday () -. t0

let measure ?record pager f =
  (* one untimed warmup run before sampling: the first execution of a
     code path otherwise shows up as an outlier (up to ~3x the median
     in recorded runs) and poisons the sample set *)
  ignore (time_once pager f : float);
  let samples = List.init runs (fun _ -> time_once pager f) in
  (match record with
  | Some name -> bench_results := (name, samples) :: !bench_results
  | None -> ());
  median samples

let count_emitted run =
  let n = ref 0 in
  let _ = run ~emit:(fun _ -> incr n) () in
  !n

(* ------------------------------------------------------------------ *)
(* Table printing *)

let print_header title columns =
  Printf.printf "\n== %s ==\n%!" title;
  Printf.printf "%-12s" "freq";
  List.iter (fun c -> Printf.printf "%12s" c) columns;
  print_newline ()

let print_row label cells =
  Printf.printf "%-12s" label;
  List.iter (fun v -> Printf.printf "%12.4f" v) cells;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Tables 1-4: TermJoin and the baselines *)

let term_methods ~mode ~enhanced ctx terms =
  let tj_run variant ~emit () =
    Access.Term_join.run ~variant ~mode ctx ~terms ~emit ()
  in
  let base =
    [
      ("Comp1", fun ~emit () -> Access.Composite.comp1 ~mode ctx ~terms ~emit ());
      ("Comp2", fun ~emit () -> Access.Composite.comp2 ~mode ctx ~terms ~emit ());
      ("GenMeet", fun ~emit () -> Access.Gen_meet.run ~mode ctx ~terms ~emit ());
      ("TermJoin", tj_run Access.Term_join.Plain);
    ]
  in
  if enhanced then base @ [ ("Enhanced", tj_run Access.Term_join.Enhanced) ]
  else base

let run_term_table ~name ~title ~mode ~enhanced ctx rows =
  let pager = Store.Element_store.pager ctx.Access.Ctx.elements in
  print_header title (List.map fst (term_methods ~mode ~enhanced ctx [ "x" ]));
  List.iter
    (fun (label, terms) ->
      let methods = term_methods ~mode ~enhanced ctx terms in
      let cells =
        List.map
          (fun (mname, run) ->
            measure
              ~record:(Printf.sprintf "%s/%s/%s" name label mname)
              pager
              (fun () -> count_emitted run))
          methods
      in
      print_row label cells)
    rows

let table1 ctx =
  run_term_table ~name:"table1"
    ~title:
      "Table 1: two terms, increasing term frequency, simple scoring (seconds)"
    ~mode:Access.Counter_scoring.Simple ~enhanced:false ctx
    (List.map (fun f -> (string_of_int f, [ qa f; qb f ])) tj_freqs)

let table2 ctx =
  run_term_table ~name:"table2"
    ~title:
      "Table 2: two terms, increasing term frequency, complex scoring (seconds)"
    ~mode:Access.Counter_scoring.Complex ~enhanced:true ctx
    (List.map (fun f -> (string_of_int f, [ qa f; qb f ])) tj_freqs)

let table3 ctx =
  run_term_table ~name:"table3"
    ~title:
      "Table 3: term1 fixed at 1000, term2 increasing, complex scoring (seconds)"
    ~mode:Access.Counter_scoring.Complex ~enhanced:true ctx
    (List.map (fun f -> (string_of_int f, [ qa 1000; qb f ])) t3_freqs)

let table4 ctx =
  run_term_table ~name:"table4"
    ~title:
      "Table 4: increasing number of query terms, terms at freq 1500, complex \
       scoring (seconds)"
    ~mode:Access.Counter_scoring.Complex ~enhanced:true ctx
    (List.map
       (fun k -> (string_of_int k, List.init k t4_term))
       [ 2; 3; 4; 5; 6; 7 ])

(* ------------------------------------------------------------------ *)
(* Table 5: PhraseFinder vs Comp3 *)

let table5 ctx =
  let pager = Store.Element_store.pager ctx.Access.Ctx.elements in
  Printf.printf
    "\n== Table 5: PhraseFinder vs composite of access methods (13 two-term \
     phrases; paper frequencies / %d) ==\n%!"
    t5_scale;
  Printf.printf "%5s %10s %10s %10s %12s %12s\n" "query" "term1" "term2"
    "result" "Comp3" "PhraseFinder";
  List.iteri
    (fun i (f1, f2, _) ->
      let phrase = [ pool_term f1; pool_term f2 ] in
      let result_size = List.length (Access.Phrase_finder.to_list ctx ~phrase) in
      let comp3 =
        measure
          ~record:(Printf.sprintf "table5/q%d/Comp3" (i + 1))
          pager
          (fun () ->
            count_emitted (fun ~emit () ->
                Access.Composite.comp3 ctx ~phrase ~emit ()))
      in
      let pf =
        measure
          ~record:(Printf.sprintf "table5/q%d/PhraseFinder" (i + 1))
          pager
          (fun () ->
            count_emitted (fun ~emit () ->
                Access.Phrase_finder.run ctx ~phrase ~emit ()))
      in
      Printf.printf "%5d %10d %10d %10d %12.4f %12.4f\n%!" (i + 1)
        (f1 / t5_scale) (f2 / t5_scale) result_size comp3 pf)
    table5_rows

(* ------------------------------------------------------------------ *)
(* Skip index: each access method with its seek-over-skip-table path
   toggled on and off, on workloads selective enough that most of the
   postings are skippable — the Sec. 6 observation that selective
   queries should not pay for the postings they discard. *)

let sampled_articles ctx ~every =
  match Store.Catalog.tag_id ctx.Access.Ctx.catalog "article" with
  | None -> [||]
  | Some id ->
    Store.Tag_index.nodes ctx.Access.Ctx.tags ~tag:id
    |> Array.to_list
    |> List.filter_map (fun (i : Store.Tag_index.item) ->
           if i.doc mod every = 0 then
             Some
               {
                 Access.Structural_join.doc = i.doc;
                 start = i.start;
                 end_ = i.end_;
                 level = i.level;
               }
           else None)
    |> Array.of_list
    |> Access.Structural_join.outermost

let skips ctx =
  let pager = Store.Element_store.pager ctx.Access.Ctx.elements in
  Printf.printf
    "\n== Skip index: seek-enabled vs sequential decoding (seconds) ==\n%!";
  Printf.printf "%-26s %12s %12s %10s\n" "experiment" "skips off" "skips on"
    "speedup";
  let pair name off on =
    let t_off = measure ~record:(name ^ "/skips=off") pager off in
    let t_on = measure ~record:(name ^ "/skips=on") pager on in
    Printf.printf "%-26s %12.4f %12.4f %9.1fx\n%!" name t_off t_on
      (t_off /. t_on)
  in
  (* galloping phrase intersection on the most selective Table 5 row:
     two frequent terms whose phrase almost never occurs — and on the
     densest row (query 1), where most probes hit and seeks cannot
     help, as the honest worst case *)
  let phrase_pair name phrase =
    pair ("phrase/" ^ name)
      (fun () ->
        count_emitted (fun ~emit () ->
            Access.Phrase_finder.run ~use_skips:false ctx ~phrase ~emit ()))
      (fun () ->
        count_emitted (fun ~emit () ->
            Access.Phrase_finder.run ctx ~phrase ~emit ()));
    pair ("comp3/" ^ name)
      (fun () ->
        count_emitted (fun ~emit () ->
            Access.Composite.comp3 ~use_skips:false ctx ~phrase ~emit ()))
      (fun () ->
        count_emitted (fun ~emit () ->
            Access.Composite.comp3 ctx ~phrase ~emit ()))
  in
  phrase_pair "selective" [ pool_term 121076; pool_term 45988 ];
  phrase_pair "dense" [ pool_term 121076; pool_term 44930 ];
  (* structural selection: postings of a frequent term semi-joined
     against 2% of the article subtrees — the cursor seeks from one
     subtree interval to the next *)
  let within = sampled_articles ctx ~every:50 in
  let cursor_of term =
    match Ir.Inverted_index.lookup ctx.Access.Ctx.index term with
    | Some p -> Ir.Postings.cursor p
    | None -> invalid_arg ("bench: unplanted term " ^ term)
  in
  pair "within/occurrences"
    (fun () ->
      Access.Structural_join.occurrences_within ~use_skips:false
        (cursor_of (qa 10000)) ~within
        ~emit:(fun _ _ -> ())
        ())
    (fun () ->
      Access.Structural_join.occurrences_within (cursor_of (qa 10000)) ~within
        ~emit:(fun _ _ -> ())
        ());
  pair "genmeet/within"
    (fun () ->
      count_emitted (fun ~emit () ->
          Access.Gen_meet.run ~within ~use_skips:false ctx
            ~terms:[ qa 10000; qb 10000 ]
            ~emit ()))
    (fun () ->
      count_emitted (fun ~emit () ->
          Access.Gen_meet.run ~within ctx
            ~terms:[ qa 10000; qb 10000 ]
            ~emit ()));
  (* document Top-K with max-score pruning: one dominant frequent
     term, two rare ones that become non-essential immediately *)
  let topk_terms = [ pool_term 146477; qa 20; qb 100 ] in
  pair "topk/docs-k10"
    (fun () ->
      List.length
        (Access.Ranked.top_k_docs ~use_skips:false ctx ~terms:topk_terms ~k:10))
    (fun () ->
      List.length (Access.Ranked.top_k_docs ctx ~terms:topk_terms ~k:10))

(* ------------------------------------------------------------------ *)
(* Decode throughput: the frame-of-reference bit-packed posting
   blocks against the legacy varint codec (the TIXDB003 payload) on
   the same occurrence stream, then snapshot open-to-first-pin
   latency of the mmap'd TIXDB004 reader against the legacy eager
   loader at increasing index sizes. *)

(* deferred so a failed speedup assertion still writes the JSON *)
let bench_failures : string list ref = ref []

(* sample a thunk [runs] times after one warmup, record, return the
   floor (these are tight single-threaded loops; the minimum is the
   noise-free reading) *)
let sample_floor name f =
  ignore (f ());
  let samples =
    List.init runs (fun _ ->
        let t0 = Unix.gettimeofday () in
        let _ = f () in
        Unix.gettimeofday () -. t0)
  in
  bench_results := (name, samples) :: !bench_results;
  minimum samples

(* ------------------------------------------------------------------ *)
(* Planner: the static compile rule vs the cost-based choice. The
   static rule is frequency-blind — two or more terms always run the
   Comp1 baseline — so on frequent terms it walks nearly every
   subtree in the corpus. The costed planner prices every method from
   the collection statistics and the exact per-term occurrence
   counts; the adversarial (frequent-term) workload gates a >= 10x
   win over the static choice. *)

let planner_bench db ctx =
  let pager = Store.Element_store.pager ctx.Access.Ctx.elements in
  let stats = Store.Db.collection_stats db in
  let index = Store.Db.index db in
  let mode = Access.Counter_scoring.Simple in
  Printf.printf
    "\n== Planner: static compile rule vs cost-based choice (seconds) ==\n%!";
  Printf.printf "%-10s %10s %10s %9s  %s\n%!" "workload" "static" "costed"
    "speedup" "costed choice";
  List.iter
    (fun (name, terms) ->
      (* the frequency-blind static rule: >= 2 terms -> Comp1 *)
      let static_run () =
        List.length (Access.Composite.comp1_list ~mode ctx ~terms)
      in
      let d = Query.Planner.choose ~stats ~index ~terms () in
      let costed_run () =
        List.length
          (match d.Query.Planner.access with
          | Access.Pattern_exec.Term_join variant ->
            Access.Term_join.to_list ~variant ~mode ctx ~terms
          | Access.Pattern_exec.Gen_meet { use_skips } ->
            Access.Gen_meet.to_list ~use_skips ~mode ctx ~terms
          | Access.Pattern_exec.Comp1 ->
            Access.Composite.comp1_list ~mode ctx ~terms
          | Access.Pattern_exec.Comp2 ->
            Access.Composite.comp2_list ~mode ctx ~terms)
      in
      (* both plans must score the same element set *)
      let n_static = static_run () in
      let n_costed = costed_run () in
      if n_static <> n_costed then
        bench_failures :=
          Printf.sprintf
            "planner/%s: costed plan scored %d elements, static rule %d" name
            n_costed n_static
          :: !bench_failures;
      let t_static =
        measure ~record:(Printf.sprintf "planner/%s/static" name) pager
          static_run
      in
      let t_costed =
        measure ~record:(Printf.sprintf "planner/%s/costed" name) pager
          costed_run
      in
      let speedup = t_static /. t_costed in
      Printf.printf "%-10s %10.4f %10.4f %8.1fx  %s\n%!" name t_static t_costed
        speedup
        (Query.Planner.to_string d);
      if name = "frequent" && speedup < 10. then
        bench_failures :=
          Printf.sprintf
            "planner: costed choice only %.1fx over the static rule on the \
             frequent workload (>= 10x required)"
            speedup
          :: !bench_failures)
    [
      ("rare", [ qa 20; qb 20 ]);
      ("frequent", [ qa 10000; qb 10000 ]);
      ("mixed", [ qa 20; qb 10000 ]);
    ]

let decode_bench ctx =
  let index = ctx.Access.Ctx.index in
  (* the fattest posting list in the index, whatever the corpus size *)
  let term, _ =
    match Ir.Inverted_index.terms_by_freq index with
    | t :: _ -> t
    | [] -> failwith "decode bench: empty index"
  in
  let packed =
    match Ir.Inverted_index.lookup index term with
    | Some p -> p
    | None -> assert false
  in
  let varint = Ir.Postings_varint.of_packed packed in
  let n = Ir.Postings.length packed in
  Printf.printf
    "\n== Decode: posting codec throughput (term %S, %d occurrences, packed \
     %d B vs varint %d B) ==\n%!"
    term n (Ir.Postings.byte_size packed)
    (Ir.Postings_varint.byte_size varint);
  (* enough repetitions that one sample is ~4M occurrences; the
     allocation-free [scan] on both sides measures the codecs, not
     the option boxing of the cursor API *)
  let reps = max 1 (4_000_000 / max 1 n) in
  let scan_packed () =
    let k = ref 0 in
    for _ = 1 to reps do
      Ir.Postings.scan packed (fun _ _ _ -> incr k)
    done;
    !k
  in
  let scan_varint () =
    let k = ref 0 in
    for _ = 1 to reps do
      Ir.Postings_varint.scan varint (fun _ _ _ -> incr k)
    done;
    !k
  in
  let t_packed = sample_floor "decode/scan/packed" scan_packed in
  let t_varint = sample_floor "decode/scan/varint" scan_varint in
  let occs_per_sample = float_of_int (reps * n) in
  Printf.printf "%-26s %10.1f M occ/s\n%!" "sequential scan, packed"
    (occs_per_sample /. t_packed /. 1e6);
  Printf.printf "%-26s %10.1f M occ/s\n%!" "sequential scan, varint"
    (occs_per_sample /. t_varint /. 1e6);
  Printf.printf "%-26s %9.2fx\n%!" "packed speedup" (t_varint /. t_packed);
  if t_varint /. t_packed < 2.0 then
    bench_failures :=
      Printf.sprintf
        "packed sequential decode only %.2fx over varint (>= 2x required)"
        (t_varint /. t_packed)
      :: !bench_failures;
  (* seeks through the skip table: ~1k ascending targets spread over
     the list, a fresh cursor per pass *)
  let arr = Array.of_list (Ir.Postings.to_list packed) in
  let stride = max 1 (Array.length arr / 1024) in
  let targets =
    Array.to_list arr
    |> List.filteri (fun i _ -> i mod stride = stride - 1)
    |> List.map (fun (o : Ir.Postings.occ) -> (o.doc, o.pos))
  in
  let ntargets = List.length targets in
  let seek_reps = max 1 (50_000 / max 1 ntargets) in
  let seek_packed () =
    for _ = 1 to seek_reps do
      let c = Ir.Postings.cursor packed in
      List.iter
        (fun (d, p) -> ignore (Ir.Postings.seek_pos c ~doc:d ~pos:p))
        targets
    done
  in
  let seek_varint () =
    for _ = 1 to seek_reps do
      let c = Ir.Postings_varint.cursor varint in
      List.iter
        (fun (d, p) -> ignore (Ir.Postings_varint.seek_pos c ~doc:d ~pos:p))
        targets
    done
  in
  let s_packed = sample_floor "decode/seek/packed" seek_packed in
  let s_varint = sample_floor "decode/seek/varint" seek_varint in
  let seeks_per_sample = float_of_int (seek_reps * ntargets) in
  Printf.printf "%-26s %10.2f M seeks/s (%d targets)\n%!" "skip seeks, packed"
    (seeks_per_sample /. s_packed /. 1e6)
    ntargets;
  Printf.printf "%-26s %10.2f M seeks/s\n%!" "skip seeks, varint"
    (seeks_per_sample /. s_varint /. 1e6);
  (* snapshot open + first pin at increasing corpus sizes: the mapped
     TIXDB004 open checksums the file and defers all posting/page
     decoding; the legacy TIXDB003 open decodes everything eagerly
     and rebuilds the structural indexes by scanning *)
  Printf.printf
    "\n== Decode: snapshot open + first pin (mmap'd TIXDB004 vs legacy \
     TIXDB003; ms) ==\n%!";
  Printf.printf "%10s %12s %10s %12s %10s %9s %12s %12s %12s %12s\n" "articles"
    "v4 bytes" "v4 (ms)" "v3 bytes" "v3 (ms)" "ratio" "v4 pin (us)"
    "v3 pin (us)" "v4 look(ms)" "v3 look(ms)";
  let sizes =
    List.sort_uniq compare [ max 50 (articles / 10); max 120 (articles / 3); articles ]
  in
  List.iter
    (fun size ->
      (* an unplanted corpus: the planted-term load does not fit the
         smaller sizes, and open latency only needs bulk *)
      let cfg = { Workload.Corpus.default with articles = size; seed = 20030609 } in
      let options = { Store.Db.default_options with keep_trees = false } in
      let db = Store.Db.load ~options (Workload.Corpus.generate cfg) in
      (* a frequent term of this corpus, for the first-lookup row *)
      let probe_term =
        match Ir.Inverted_index.terms_by_freq (Store.Db.index db) with
        | (t, _) :: _ -> t
        | [] -> failwith "decode bench: empty index"
      in
      let v4 = Filename.temp_file "tix_bench" ".tix" in
      let v3 = Filename.temp_file "tix_bench" ".tix" in
      Fun.protect
        ~finally:(fun () ->
          Sys.remove v4;
          Sys.remove v3)
        (fun () ->
          Store.Db.save db v4;
          Store.Db.save_v3 db v3;
          let open_pin path () =
            let d = Store.Db.open_file_exn path in
            match
              Store.Pager.pin (Store.Element_store.pager (Store.Db.elements d))
            with
            | Ok () -> ()
            | Error e ->
              failwith
                (Format.asprintf "open bench pin: %a" Store.Pager.pp_read_error e)
          in
          let t4 =
            sample_floor
              (Printf.sprintf "decode/open/v4/articles=%d" size)
              (open_pin v4)
          in
          let t3 =
            sample_floor
              (Printf.sprintf "decode/open/v3/articles=%d" size)
              (open_pin v3)
          in
          (* pin alone, on an already-open snapshot: the mapped pager
             is born pinned (O(1) republication); the heap pager
             re-verifies every page's checksum (linear) *)
          let pin_only path =
            let d = Store.Db.open_file_exn path in
            let pager = Store.Element_store.pager (Store.Db.elements d) in
            fun () ->
              match Store.Pager.pin pager with
              | Ok () -> ()
              | Error e ->
                failwith
                  (Format.asprintf "pin bench: %a" Store.Pager.pp_read_error e)
          in
          let p4 =
            sample_floor
              (Printf.sprintf "decode/pin/v4/articles=%d" size)
              (pin_only v4)
          in
          let p3 =
            sample_floor
              (Printf.sprintf "decode/pin/v3/articles=%d" size)
              (pin_only v3)
          in
          (* open + first term lookup: the mapped dictionary decodes
             lazily, so the v4 reader pays its probe-table build here
             rather than at open; the legacy reader already decoded
             every term eagerly *)
          let open_lookup path () =
            let d = Store.Db.open_file_exn path in
            match Ir.Inverted_index.lookup (Store.Db.index d) probe_term with
            | Some _ -> ()
            | None -> failwith "decode bench: probe term missing after open"
          in
          let l4 =
            sample_floor
              (Printf.sprintf "decode/open+lookup/v4/articles=%d" size)
              (open_lookup v4)
          in
          let l3 =
            sample_floor
              (Printf.sprintf "decode/open+lookup/v3/articles=%d" size)
              (open_lookup v3)
          in
          Printf.printf
            "%10d %12d %10.2f %12d %10.2f %8.1fx %12.1f %12.1f %12.2f %12.2f\n%!"
            size
            (Unix.stat v4).Unix.st_size (t4 *. 1000.)
            (Unix.stat v3).Unix.st_size (t3 *. 1000.) (t3 /. t4)
            (p4 *. 1e6) (p3 *. 1e6) (l4 *. 1000.) (l3 *. 1000.)))
    sizes

(* ------------------------------------------------------------------ *)
(* Intra-query parallelism: the same query partitioned across 1, 2
   and 4 domains (Exec.Par). The 1-domain column is the plain
   sequential access method — the honest baseline the fan-out must
   beat. Results are identical by construction (the determinism
   property tests check byte-equality); this table only measures wall
   time. *)

let parallel_bench ctx =
  let pager = Store.Element_store.pager ctx.Access.Ctx.elements in
  Printf.printf
    "\n== Parallel: intra-query fan-out across domains (seconds) ==\n%!";
  Printf.printf "%-14s %12s %12s %12s %10s\n" "family" "1 domain" "2 domains"
    "4 domains" "speedup";
  let row name seq par =
    let t1 =
      measure ~record:(Printf.sprintf "parallel/%s/domains=1" name) pager seq
    in
    let t2 =
      measure
        ~record:(Printf.sprintf "parallel/%s/domains=2" name)
        pager
        (fun () -> par 2)
    in
    let t4 =
      measure
        ~record:(Printf.sprintf "parallel/%s/domains=4" name)
        pager
        (fun () -> par 4)
    in
    Printf.printf "%-14s %12.4f %12.4f %12.4f %9.1fx\n%!" name t1 t2 t4
      (t1 /. Float.min t2 t4);
    (t1, t2, t4)
  in
  let complex = Access.Counter_scoring.Complex in
  let tj_terms = [ qa 10000; qb 10000 ] in
  ignore
    (row "termjoin"
       (fun () ->
         count_emitted (fun ~emit () ->
             Access.Term_join.run ~mode:complex ctx ~terms:tj_terms ~emit ()))
       (fun p ->
         List.length
           (Exec.Par.term_join ~mode:complex ~parallelism:p ctx ~terms:tj_terms)));
  let phrase = [ pool_term 121076; pool_term 44930 ] in
  ignore
    (row "phrase"
       (fun () ->
         count_emitted (fun ~emit () ->
             Access.Phrase_finder.run ctx ~phrase ~emit ()))
       (fun p -> List.length (Exec.Par.phrase ~parallelism:p ctx ~phrase)));
  let r_terms = [ pool_term 146477; pool_term 121076; qa 5500 ] in
  let t1, t2, t4 =
    row "ranked-k10"
      (fun () -> List.length (Access.Ranked.top_k_docs ctx ~terms:r_terms ~k:10))
      (fun p ->
        List.length (Exec.Par.top_k_docs ~parallelism:p ctx ~terms:r_terms ~k:10))
  in
  let cores = Domain.recommended_domain_count () in
  if cores >= 2 then begin
    let speedup = t1 /. Float.min t2 t4 in
    if speedup >= 1.5 then
      Printf.printf "ranked top-k parallel speedup: %.2fx (>= 1.5x required)\n%!"
        speedup
    else
      bench_failures :=
        Printf.sprintf
          "ranked top-k parallel speedup %.2fx < 1.5x on a host with %d \
           recommended domains"
          speedup cores
        :: !bench_failures
  end
  else
    Printf.printf
      "single-core host (%d recommended domain): speedup assertion skipped, \
       wall times recorded\n%!"
      cores

(* ------------------------------------------------------------------ *)
(* Pick: 200 to 55,000 input nodes (Sec. 6, in-text) *)

let synthetic_scored_tree n =
  (* a deterministic tree with pseudo-random scores and exactly [n]
     nodes; fanouts are dealt breadth-first so the shape stays
     shallow and wide like a document *)
  let state = Random.State.make [| n; 17 |] in
  let counts = Array.make n 0 in
  let remaining = ref (n - 1) and frontier = ref 0 in
  while !remaining > 0 do
    let fanout = min !remaining (2 + Random.State.int state 7) in
    counts.(!frontier) <- fanout;
    remaining := !remaining - fanout;
    incr frontier
  done;
  (* node i's children are the consecutive BFS ids starting at
     first_child.(i) *)
  let first_child = Array.make (n + 1) 1 in
  for i = 0 to n - 1 do
    first_child.(i + 1) <- first_child.(i) + counts.(i)
  done;
  let nodes = Array.make n (Core.Stree.make "n" []) in
  for i = n - 1 downto 0 do
    let children =
      List.init counts.(i) (fun k ->
          Core.Stree.Node nodes.(first_child.(i) + k))
    in
    nodes.(i) <-
      Core.Stree.make ~score:(Random.State.float state 2.) "n" children
  done;
  nodes.(0)

let pick_bench () =
  Printf.printf
    "\n== Pick: parent/child redundancy elimination, increasing input size \
     (seconds) ==\n%!";
  Printf.printf "%10s %12s %12s\n" "nodes" "Pick" "returned";
  let crit = Core.Op_pick.pick_foo ~threshold:1.0 () in
  List.iter
    (fun n ->
      let tree = synthetic_scored_tree n in
      let actual = Core.Stree.size tree in
      let returned = ref 0 in
      (* warmup, as in [measure] *)
      ignore
        (Access.Pick_stack.run crit
           ~candidates:(fun _ -> true)
           ~emit:ignore tree);
      let samples =
        List.init runs (fun _ ->
            returned := 0;
            let t0 = Unix.gettimeofday () in
            let _ =
              Access.Pick_stack.run crit
                ~candidates:(fun _ -> true)
                ~emit:(fun _ -> incr returned)
                tree
            in
            Unix.gettimeofday () -. t0)
      in
      Printf.printf "%10d %12.4f %12d\n%!" actual (median samples)
        !returned)
    [ 200; 500; 1000; 2000; 5000; 10000; 20000; 55000 ]

(* ------------------------------------------------------------------ *)
(* Ablations: sensitivity of the storage design choices. The paper's
   cost differences hinge on what each method reads through the
   buffer pool; these sweeps show how the pool and page sizes move
   the scan-bound (Comp2) and random-access-bound (plain TermJoin,
   complex scoring) methods. *)

let ablation () =
  let articles = min articles 800 in
  let build ~pool_pages ~page_size =
    let cfg = { (corpus_config ()) with Workload.Corpus.articles } in
    let options =
      { Store.Db.default_options with keep_trees = false; pool_pages; page_size }
    in
    Access.Ctx.of_db (Store.Db.load ~options (Workload.Corpus.generate cfg))
  in
  let measure_pair ctx =
    let pager = Store.Element_store.pager ctx.Access.Ctx.elements in
    let terms = [ qa 3000; qb 3000 ] in
    let comp2 =
      measure pager (fun () ->
          count_emitted (fun ~emit () ->
              Access.Composite.comp2 ~mode:Access.Counter_scoring.Complex ctx
                ~terms ~emit ()))
    in
    let tj =
      measure pager (fun () ->
          count_emitted (fun ~emit () ->
              Access.Term_join.run ~mode:Access.Counter_scoring.Complex ctx
                ~terms ~emit ()))
    in
    (comp2, tj)
  in
  Printf.printf
    "\n== Ablation: buffer-pool frames (%d articles; Comp2 vs plain TermJoin, \
     complex, freq 3000; seconds) ==\n%!"
    articles;
  Printf.printf "%12s %12s %12s\n" "pool pages" "Comp2" "TermJoin";
  List.iter
    (fun pool_pages ->
      let ctx = build ~pool_pages ~page_size:Store.Pager.default_page_size in
      let comp2, tj = measure_pair ctx in
      Printf.printf "%12d %12.4f %12.4f\n%!" pool_pages comp2 tj)
    [ 64; 512; 4096 ];
  Printf.printf
    "\n== Ablation: page size (%d articles; same workload; seconds) ==\n%!"
    articles;
  Printf.printf "%12s %12s %12s\n" "page bytes" "Comp2" "TermJoin";
  List.iter
    (fun page_size ->
      let ctx = build ~pool_pages:1024 ~page_size in
      let comp2, tj = measure_pair ctx in
      Printf.printf "%12d %12.4f %12.4f\n%!" page_size comp2 tj)
    [ 2048; 8192; 32768 ];
  (* holistic chain join vs a sequence of binary structural
     semi-joins, on //article//section//p *)
  let ctx = build ~pool_pages:1024 ~page_size:Store.Pager.default_page_size in
  let pager = Store.Element_store.pager ctx.Access.Ctx.elements in
  let chain =
    let open Core.Pattern in
    make
      (pnode ~pred:(Tag "article") 1
         [
           pnode ~axis:Descendant ~pred:(Tag "section") 2
             [ pnode ~axis:Descendant ~pred:(Tag "p") 3 [] ];
         ])
      []
  in
  Printf.printf
    "\n== Ablation: chain join strategy (//article//section//p, %d articles; \
     seconds) ==\n%!"
    articles;
  Printf.printf "%24s %12s\n" "strategy" "time";
  let t_binary =
    measure pager (fun () ->
        List.length (Access.Pattern_exec.matches ctx chain ~var:3))
  in
  Printf.printf "%24s %12.4f\n%!" "binary semi-joins" t_binary;
  let t_holistic =
    measure pager (fun () ->
        List.length (Access.Path_stack.matches ctx chain ~var:3))
  in
  Printf.printf "%24s %12.4f\n%!" "holistic PathStack" t_holistic;
  let t_twig =
    measure pager (fun () ->
        List.length (Access.Twig_stack.matches ctx chain ~var:3))
  in
  Printf.printf "%24s %12.4f\n%!" "holistic TwigStack" t_twig;
  (* a branching twig: //article[//section-title][//p] *)
  let twig =
    let open Core.Pattern in
    make
      (pnode ~pred:(Tag "article") 1
         [
           pnode ~axis:Descendant ~pred:(Tag "section-title") 2 [];
           pnode ~axis:Descendant ~pred:(Tag "p") 3 [];
         ])
      []
  in
  Printf.printf
    "\n== Ablation: twig join strategy (//article[//section-title][//p]; \
     seconds) ==\n%!";
  Printf.printf "%24s %12s\n" "strategy" "time";
  let t_binary =
    measure pager (fun () ->
        List.length (Access.Pattern_exec.matches ctx twig ~var:1))
  in
  Printf.printf "%24s %12.4f\n%!" "binary semi-joins" t_binary;
  let t_twig =
    measure pager (fun () ->
        List.length (Access.Twig_stack.matches ctx twig ~var:1))
  in
  Printf.printf "%24s %12.4f\n%!" "holistic TwigStack" t_twig

(* ------------------------------------------------------------------ *)
(* Service: concurrent throughput of the tixd query pool. The same
   mixed batch of requests runs through 1, 2 and 4 worker domains
   with caches disabled (pure evaluation scaling over the pinned
   snapshot), then through 4 workers with the result cache on (the
   batch repeats 60 distinct requests, so steady state is mostly
   cache hits). *)

let service_batch_size =
  match Sys.getenv_opt "TIX_BENCH_SERVICE_BATCH" with
  | Some s -> int_of_string s
  | None -> 400

let service_requests n =
  List.init n (fun i ->
      let k = Some (5 + (i mod 10)) in
      let req =
        match i mod 6 with
        | 0 ->
          Service.Engine.Search
            {
              terms = [ qa 1000; qb 1000 ];
              method_ = Service.Engine.Termjoin;
              complex = false;
              anchor = None;
            }
        | 1 ->
          Service.Engine.Search
            {
              terms = [ qa 300; qb 300 ];
              method_ = Service.Engine.Termjoin;
              complex = true;
              anchor = None;
            }
        | 2 ->
          Service.Engine.Search
            {
              terms = [ qa 2000; qb 2000 ];
              method_ = Service.Engine.Genmeet;
              complex = false;
              anchor = None;
            }
        | 3 ->
          Service.Engine.Phrase
            {
              phrase = pool_term 121076 ^ " " ^ pool_term 44930;
              comp3 = false;
            }
        | 4 -> Service.Engine.Ranked { terms = [ qa 500; qb 500 ] }
        | _ ->
          Service.Engine.Search
            {
              terms = [ qa 100; qb 100 ];
              method_ = Service.Engine.Enhanced;
              complex = true;
              anchor = None;
            }
      in
      (req, k))

let service_bench db =
  let snapshot =
    match Service.Engine.of_db db with
    | Ok s -> s
    | Error e -> failwith ("service bench: " ^ e)
  in
  let requests = service_requests service_batch_size in
  let n = List.length requests in
  let batch ?(trace = false) scheduler =
    let t0 = Unix.gettimeofday () in
    let promises =
      List.map
        (fun (req, k) ->
          match Service.Scheduler.submit scheduler ?k ~trace req with
          | Ok p -> p
          | Error _ -> failwith "service bench: admission rejected")
        requests
    in
    List.iter
      (fun p -> ignore (Service.Scheduler.await p : (_, _) result))
      promises;
    Unix.gettimeofday () -. t0
  in
  Printf.printf
    "\n== Service: domain pool throughput (%d mixed requests per batch) ==\n%!"
    n;
  Printf.printf "%8s %6s %6s %10s %10s %10s %10s\n" "workers" "cache" "trace"
    "QPS" "p50(ms)" "p99(ms)" "hits";
  let config ~workers ~cached ?(traced = false) () =
    let scheduler =
      Service.Scheduler.create ~workers ~queue_depth:n
        ~plan_cache_capacity:(if cached then 256 else 0)
        ~result_cache_capacity:(if cached then 4096 else 0)
        snapshot
    in
    Fun.protect
      ~finally:(fun () -> Service.Scheduler.shutdown scheduler)
      (fun () ->
        (* one untimed batch warms code paths (and, when on, the cache) *)
        ignore (batch ~trace:traced scheduler : float);
        Service.Metrics.reset ();
        let name =
          Printf.sprintf "service/batch/workers=%d/cache=%s/trace=%s" workers
            (if cached then "on" else "off")
            (if traced then "on" else "off")
        in
        let samples =
          List.init runs (fun _ -> batch ~trace:traced scheduler)
        in
        bench_results := (name, samples) :: !bench_results;
        let qps = float_of_int n /. median samples in
        let q p =
          Service.Metrics.quantile_ns (Service.Metrics.histogram "query.total") p
          /. 1e6
        in
        let hits =
          (Service.Scheduler.stats scheduler).Service.Scheduler.result_cache
            .Service.Lru.hits
        in
        let ms v =
          (* every request served from cache leaves the latency
             histogram empty *)
          if Float.is_nan v then Printf.sprintf "%10s" "-"
          else Printf.sprintf "%10.3f" v
        in
        Printf.printf "%8d %6s %6s %10.0f %s %s %10d\n%!" workers
          (if cached then "on" else "off")
          (if traced then "on" else "off")
          qps
          (ms (q 0.5))
          (ms (q 0.99))
          hits)
  in
  config ~workers:1 ~cached:false ();
  config ~workers:2 ~cached:false ();
  config ~workers:4 ~cached:false ();
  config ~workers:4 ~cached:false ~traced:true ();
  config ~workers:4 ~cached:true ()

(* ------------------------------------------------------------------ *)
(* Live updates: WAL-durable mutation throughput, the query-time
   overhead of a pending delta against the plain snapshot, and the
   cost of folding the delta into a fresh image (checkpoint). *)

let updates_batch_size =
  match Sys.getenv_opt "TIX_BENCH_UPDATES_BATCH" with
  | Some s -> int_of_string s
  | None -> 200

let updates_bench db =
  let dir = Filename.temp_file "tix_bench_updates" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let rec rm_rf path =
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect
    ~finally:(fun () -> try rm_rf dir with Sys_error _ -> ())
    (fun () ->
      let live =
        match Store.Live.open_dir ~base:db ~dir () with
        | Ok o -> o.Store.Live.live
        | Error e -> failwith (Store.Live.error_to_string e)
      in
      let n = updates_batch_size in
      Printf.printf "\n== Live updates (%d WAL-durable inserts) ==\n%!" n;
      let doc i =
        Printf.sprintf
          "<article><title>bench %d</title><sec><p>%s %s planted bench \
           text</p></sec></article>"
          i (qa 1000) (qb 1000)
      in
      let t0 = Unix.gettimeofday () in
      for i = 0 to n - 1 do
        match
          Store.Live.insert live
            ~name:(Printf.sprintf "bench%d.xml" i)
            ~xml:(doc i)
        with
        | Ok () -> ()
        | Error e -> failwith (Store.Live.error_to_string e)
      done;
      let ingest_s = Unix.gettimeofday () -. t0 in
      bench_results := ("updates/insert-batch", [ ingest_s ]) :: !bench_results;
      Printf.printf "%-28s %10.0f docs/s (%.1f ms total, fsync per doc)\n%!"
        "insert throughput"
        (float_of_int n /. ingest_s)
        (ingest_s *. 1000.);
      (* query overhead of the pending delta: the same ranked request
         against the plain snapshot and the base+delta view *)
      let snapshot =
        match Service.Engine.of_db db with
        | Ok s -> s
        | Error e -> failwith e
      in
      let delta_snapshot =
        Service.Engine.with_delta snapshot (Store.Live.delta live)
      in
      let request = Service.Engine.Ranked { terms = [ qa 1000; qb 1000 ] } in
      let time_queries snap =
        let t0 = Unix.gettimeofday () in
        for _ = 1 to 20 do
          match Service.Engine.exec ~k:10 snap request with
          | Ok _ -> ()
          | Error e -> failwith (Service.Engine.error_message e)
        done;
        (Unix.gettimeofday () -. t0) /. 20. *. 1000.
      in
      let base_ms = time_queries snapshot in
      let delta_ms = time_queries delta_snapshot in
      bench_results :=
        ("updates/ranked-base", [ base_ms /. 1000. ])
        :: ("updates/ranked-delta", [ delta_ms /. 1000. ])
        :: !bench_results;
      Printf.printf "%-28s %10.3f ms (plain snapshot)\n%!" "ranked top-10"
        base_ms;
      Printf.printf "%-28s %10.3f ms (+%d-doc delta)\n%!" "ranked top-10"
        delta_ms n;
      let t0 = Unix.gettimeofday () in
      (match Store.Live.checkpoint live with
      | Ok _ -> ()
      | Error e -> failwith (Store.Live.error_to_string e));
      let ckpt_s = Unix.gettimeofday () -. t0 in
      bench_results := ("updates/checkpoint", [ ckpt_s ]) :: !bench_results;
      Printf.printf "%-28s %10.1f ms (merge + save + wal reset)\n%!"
        "checkpoint" (ckpt_s *. 1000.);
      (* concurrent writers: the same ingest fanned across threads,
         once with per-op fsync (wal_batch = 1) and once with group
         commit, so the ratio isolates the shared-fsync win *)
      let writers =
        match Sys.getenv_opt "TIX_BENCH_UPDATES_WRITERS" with
        | Some s -> int_of_string s
        | None -> 8
      in
      let per_writer = max 1 (n / writers) in
      let concurrent_ingest ~wal_batch =
        let sub = Filename.concat dir (Printf.sprintf "gc%d" wal_batch) in
        Unix.mkdir sub 0o755;
        let lv =
          match Store.Live.open_dir ~wal_batch ~dir:sub () with
          | Ok o -> o.Store.Live.live
          | Error e -> failwith (Store.Live.error_to_string e)
        in
        let failures = Atomic.make 0 in
        let t0 = Unix.gettimeofday () in
        let threads =
          List.init writers (fun w ->
              Thread.create
                (fun () ->
                  for i = 0 to per_writer - 1 do
                    match
                      Store.Live.insert lv
                        ~name:(Printf.sprintf "gc%d-%d.xml" w i)
                        ~xml:(doc ((w * per_writer) + i))
                    with
                    | Ok () -> ()
                    | Error _ -> Atomic.incr failures
                  done)
                ())
        in
        List.iter Thread.join threads;
        let dt = Unix.gettimeofday () -. t0 in
        let stats = Store.Live.stats lv in
        Store.Live.close lv;
        if Atomic.get failures > 0 then
          failwith "concurrent ingest reported write failures";
        (float_of_int (writers * per_writer) /. dt, dt, stats)
      in
      let serial_rate, serial_s, _ = concurrent_ingest ~wal_batch:1 in
      let batched_rate, batched_s, gstats = concurrent_ingest ~wal_batch:64 in
      bench_results :=
        (Printf.sprintf "updates/ingest-%dw-fsync-per-op" writers, [ serial_s ])
        :: ( Printf.sprintf "updates/ingest-%dw-group-commit" writers,
             [ batched_s ] )
        :: !bench_results;
      Printf.printf "%-28s %10.0f docs/s (%d writers, fsync per op)\n%!"
        "concurrent ingest" serial_rate writers;
      Printf.printf
        "%-28s %10.0f docs/s (%d writers, group commit: %d batches, largest \
         %d)\n\
         %!"
        "concurrent ingest" batched_rate writers
        gstats.Store.Live.gc_batches gstats.Store.Live.gc_largest_batch;
      let ratio = batched_rate /. serial_rate in
      let cores = Domain.recommended_domain_count () in
      if cores >= 2 then
        if ratio >= 3. then
          Printf.printf
            "group-commit ingest speedup: %.2fx (>= 3x required)\n%!" ratio
        else
          bench_failures :=
            Printf.sprintf
              "group-commit ingest speedup %.2fx < 3x at %d writers on a \
               host with %d recommended domains"
              ratio writers cores
            :: !bench_failures
      else
        Printf.printf
          "single-core host (%d recommended domain): group-commit speedup \
           gate skipped at %.2fx, wall times recorded\n\
           %!"
          cores ratio;
      (* read latency while a checkpoint is in flight: refill the
         delta, run the merge on another thread, and sample ranked
         queries against a pinned base+delta view the whole time *)
      for i = 0 to n - 1 do
        match
          Store.Live.insert live
            ~name:(Printf.sprintf "ck%d.xml" i)
            ~xml:(doc i)
        with
        | Ok () -> ()
        | Error e -> failwith (Store.Live.error_to_string e)
      done;
      let base, delta = Store.Live.view live in
      let ck_snapshot =
        match Service.Engine.of_db base with
        | Ok s -> Service.Engine.with_delta s delta
        | Error e -> failwith e
      in
      let ck_done = Atomic.make false in
      let ck_err = ref None in
      let ck_thread =
        Thread.create
          (fun () ->
            (match Store.Live.checkpoint live with
            | Ok _ -> ()
            | Error e -> ck_err := Some (Store.Live.error_to_string e));
            Atomic.set ck_done true)
          ()
      in
      let lats = ref [] in
      let in_flight = ref 0 in
      let sample () =
        let t0 = Unix.gettimeofday () in
        (match Service.Engine.exec ~k:10 ck_snapshot request with
        | Ok _ -> ()
        | Error e -> failwith (Service.Engine.error_message e));
        lats := (Unix.gettimeofday () -. t0) :: !lats
      in
      while not (Atomic.get ck_done) do
        sample ();
        incr in_flight
      done;
      Thread.join ck_thread;
      (match !ck_err with Some e -> failwith e | None -> ());
      while List.length !lats < 20 do
        sample ()
      done;
      let sorted = Array.of_list !lats in
      Array.sort compare sorted;
      let p50 = percentile sorted 0.5 and p99 = percentile sorted 0.99 in
      bench_results :=
        ("updates/read-p50-during-ckpt", [ p50 ])
        :: ("updates/read-p99-during-ckpt", [ p99 ])
        :: !bench_results;
      Printf.printf
        "%-28s p50 %6.3f ms  p99 %6.3f ms (%d of %d samples with the \
         checkpoint in flight)\n\
         %!"
        "ranked during checkpoint" (p50 *. 1000.) (p99 *. 1000.) !in_flight
        (Array.length sorted);
      Store.Live.close live)

(* ------------------------------------------------------------------ *)
(* Distributed scatter-gather: the coordinator over 1/2/4 in-process
   shard backends (real TCP servers on loopback, one worker domain
   each — the per-node resource a deployment scales by adding shards).
   Closed-loop client; per-request latencies feed p50/p99, the batch
   wall clock feeds QPS. Result caches are off so every request pays
   real execution; a shard count of 1 measures pure federation
   overhead against the service bench's single-node numbers. *)

let dist_batch_size =
  match Sys.getenv_opt "TIX_BENCH_DIST_BATCH" with
  | Some s -> int_of_string s
  | None -> 200

let dist_requests n =
  List.init n (fun i ->
      let k = Some (5 + (i mod 10)) in
      let req =
        match i mod 5 with
        | 0 ->
          Service.Engine.Search
            {
              terms = [ qa 1000; qb 1000 ];
              method_ = Service.Engine.Termjoin;
              complex = false;
              anchor = None;
            }
        | 1 ->
          Service.Engine.Search
            {
              terms = [ qa 300; qb 300 ];
              method_ = Service.Engine.Termjoin;
              complex = true;
              anchor = None;
            }
        | 2 ->
          Service.Engine.Phrase
            {
              phrase = pool_term 121076 ^ " " ^ pool_term 44930;
              comp3 = false;
            }
        | 3 -> Service.Engine.Ranked { terms = [ qa 500; qb 500 ] }
        | _ ->
          Service.Engine.Search
            {
              terms = [ qa 2000; qb 2000 ];
              method_ = Service.Engine.Genmeet;
              complex = false;
              anchor = None;
            }
      in
      Service.Protocol.Exec
        {
          req;
          k;
          limits = Core.Governor.limits ();
          trace = false;
          parallelism = None;
          theta = None;
        })

let dist_bench db =
  let docs = Store.Catalog.document_count (Store.Db.catalog db) in
  let requests = dist_requests dist_batch_size in
  let n = List.length requests in
  Printf.printf
    "\n== Distributed: coordinator scatter-gather (%d mixed requests per \
     batch) ==\n%!"
    n;
  Printf.printf "%8s %10s %10s %10s %10s\n" "shards" "QPS" "p50(ms)" "p99(ms)"
    "degraded";
  List.iter
    (fun shards ->
      let parts =
        List.mapi
          (fun i (lo, hi) ->
            let tombstones = Array.init docs (fun d -> d < lo || d >= hi) in
            let shard_db =
              Store.Db.compact ~base:db ~delta:None ~tombstones
            in
            let snapshot =
              match
                Service.Engine.of_db
                  ~source:(Printf.sprintf "bench-shard-%d" i)
                  shard_db
              with
              | Ok s -> s
              | Error e -> failwith ("dist bench: " ^ e)
            in
            let scheduler =
              Service.Scheduler.create ~workers:1 ~queue_depth:n
                ~result_cache_capacity:0 snapshot
            in
            let server = Service.Server.start scheduler in
            let shard =
              {
                Dist.Shard_map.lo;
                hi;
                image = Printf.sprintf "bench-shard-%d" i;
                replicas =
                  [
                    {
                      Dist.Shard_map.host = "127.0.0.1";
                      port = Service.Server.port server;
                    };
                  ];
              }
            in
            (shard, server, scheduler))
          (Dist.Shard_map.ranges ~docs ~shards)
      in
      let map =
        match Dist.Shard_map.make (List.map (fun (s, _, _) -> s) parts) with
        | Ok m -> m
        | Error e -> failwith ("dist bench: " ^ e)
      in
      let coordinator = Dist.Coordinator.create ~source:"bench" map in
      Fun.protect
        ~finally:(fun () ->
          Dist.Client.close (Dist.Coordinator.client coordinator);
          List.iter
            (fun (_, server, scheduler) ->
              Service.Server.stop server;
              Service.Scheduler.shutdown scheduler)
            parts)
        (fun () ->
          let latencies = Array.make n 0. in
          let batch () =
            let t0 = Unix.gettimeofday () in
            List.iteri
              (fun i req ->
                let r0 = Unix.gettimeofday () in
                ignore
                  (Dist.Coordinator.handle coordinator req : Service.Json.t);
                latencies.(i) <- Unix.gettimeofday () -. r0)
              requests;
            Unix.gettimeofday () -. t0
          in
          ignore (batch () : float);
          let samples = List.init runs (fun _ -> batch ()) in
          bench_results :=
            (Printf.sprintf "dist/batch/shards=%d" shards, samples)
            :: !bench_results;
          let qps = float_of_int n /. median samples in
          let sorted = Array.copy latencies in
          Array.sort compare sorted;
          let degraded = Dist.Coordinator.degraded_served coordinator in
          if degraded > 0 then
            bench_failures :=
              Printf.sprintf "dist bench: %d degraded responses at %d shards"
                degraded shards
              :: !bench_failures;
          Printf.printf "%8d %10.0f %10.3f %10.3f %10d\n%!" shards qps
            (percentile sorted 0.5 *. 1000.)
            (percentile sorted 0.99 *. 1000.)
            degraded))
    [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per experiment *)

let micro ctx =
  let open Bechamel in
  let terms = [ qa 1000; qb 1000 ] in
  let complex = Access.Counter_scoring.Complex in
  let quiet f () = count_emitted f in
  let pick_tree = synthetic_scored_tree 5000 in
  let crit = Core.Op_pick.pick_foo ~threshold:1.0 () in
  let tests =
    Test.make_grouped ~name:"tix"
      [
        Test.make ~name:"table1/termjoin-simple"
          (Staged.stage
             (quiet (fun ~emit () -> Access.Term_join.run ctx ~terms ~emit ())));
        Test.make ~name:"table2/termjoin-complex"
          (Staged.stage
             (quiet (fun ~emit () ->
                  Access.Term_join.run ~mode:complex ctx ~terms ~emit ())));
        Test.make ~name:"table2/enhanced-complex"
          (Staged.stage
             (quiet (fun ~emit () ->
                  Access.Term_join.run ~variant:Access.Term_join.Enhanced
                    ~mode:complex ctx ~terms ~emit ())));
        Test.make ~name:"table2/genmeet-complex"
          (Staged.stage
             (quiet (fun ~emit () ->
                  Access.Gen_meet.run ~mode:complex ctx ~terms ~emit ())));
        Test.make ~name:"table4/termjoin-4terms"
          (Staged.stage
             (quiet (fun ~emit () ->
                  Access.Term_join.run ~mode:complex ctx
                    ~terms:(List.init 4 t4_term) ~emit ())));
        Test.make ~name:"table5/phrasefinder"
          (Staged.stage
             (quiet (fun ~emit () ->
                  Access.Phrase_finder.run ctx
                    ~phrase:[ pool_term 121076; pool_term 44930 ]
                    ~emit ())));
        Test.make ~name:"pick/5000-nodes"
          (Staged.stage (fun () ->
               Access.Pick_stack.run crit
                 ~candidates:(fun _ -> true)
                 ~emit:ignore pick_tree));
      ]
  in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Printf.printf "\n== Bechamel micro-benchmarks (ns per run) ==\n%!";
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        match Analyze.OLS.estimates ols with
        | Some [ est ] -> (name, est) :: acc
        | Some _ | None -> (name, nan) :: acc)
      results []
  in
  List.iter
    (fun (name, est) -> Printf.printf "%-36s %14.0f\n" name est)
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)

let () =
  let which = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  if which = "pick" then pick_bench ()
  else begin
    let db = build_db () in
    let ctx = Access.Ctx.of_db db in
    let run name f = if which = "all" || which = name then f () in
    run "table1" (fun () -> table1 ctx);
    run "table2" (fun () -> table2 ctx);
    run "table3" (fun () -> table3 ctx);
    run "table4" (fun () -> table4 ctx);
    run "table5" (fun () -> table5 ctx);
    run "skips" (fun () -> skips ctx);
    run "decode" (fun () -> decode_bench ctx);
    run "planner" (fun () -> planner_bench db ctx);
    run "parallel" (fun () -> parallel_bench ctx);
    if which = "all" then pick_bench ();
    run "ablation" (fun () -> ablation ());
    run "micro" (fun () -> micro ctx);
    (* last: pinning the pager switches it to lock-free reads, which
       would skew the buffer-pool-sensitive experiments above *)
    run "service" (fun () -> service_bench db);
    run "updates" (fun () -> updates_bench db);
    run "dist" (fun () -> dist_bench db)
  end;
  write_results_json ();
  match !bench_failures with
  | [] -> ()
  | failures ->
    List.iter (fun f -> Printf.eprintf "FAIL: %s\n%!" f) failures;
    exit 1
